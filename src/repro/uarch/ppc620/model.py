"""Trace-driven timing model of the PowerPC 620 / 620+ (paper Section 4.1).

The model is an *analytic scheduler*: it walks the annotated trace in
program order and computes, for every instruction, its fetch, dispatch,
issue, execute-done, verification, and completion times, subject to all
the machine's constraints:

* 4-wide fetch into a small instruction buffer, stalled by branch
  mispredictions (2-bit BHT + last-target BTB),
* 4-wide in-order dispatch gated by reservation-station, rename-buffer,
  and completion-buffer availability,
* out-of-order issue per functional-unit pool with per-instance
  occupancy (non-pipelined MCFX divide and FPU divide),
* non-blocking loads through a banked L1/L2 hierarchy with
  store-to-load forwarding and load/store bank-conflict retries,
* in-order completion, 4 per cycle.

Load value prediction follows the paper exactly: predicted values
forward at dispatch; dependents may issue speculatively but hold their
reservation stations and cannot complete until the load verifies (one
cycle after the actual value returns); a misprediction makes dependents
that issued early reissue one cycle *later* than they would have
executed with no prediction; CVU-verified constant loads never access
the cache at all.

Scheduling each instruction in program order (rather than simulating
every cycle) keeps the model fast enough to sweep 17 benchmarks times
ten configurations in pure Python; every constraint above is enforced
through explicit time arithmetic, so the model remains cycle-accurate
with respect to its own machine definition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass
from repro.isa.registers import NUM_REGS
from repro.lvp.unit import LoadOutcome
from repro.trace.annotate import NOT_A_LOAD, AnnotatedTrace
from repro.uarch.components.branch import BranchPredictor, BranchStats
from repro.uarch.components.cache import (
    BankTracker,
    Cache,
    CacheStats,
    MemoryHierarchy,
)
from repro.uarch.components.latencies import PPC620_LATENCY
from repro.uarch.engine import (
    BRANCH_KIND,
    fu_of_class_array,
    latency_arrays,
    resolve_model_engine,
)
from repro.uarch.ppc620.config import PPC620Config

#: Functional-unit pool ids.
FU_SCFX = 0
FU_MCFX = 1
FU_FPU = 2
FU_LSU = 3
FU_BRU = 4

FU_NAMES = ("SCFX", "MCFX", "FPU", "LSU", "BRU")

_FU_OF_CLASS = {
    int(OpClass.SIMPLE_INT): FU_SCFX,
    int(OpClass.COMPLEX_INT): FU_MCFX,
    int(OpClass.FP_SIMPLE): FU_FPU,
    int(OpClass.FP_COMPLEX): FU_FPU,
    int(OpClass.LOAD): FU_LSU,
    int(OpClass.STORE): FU_LSU,
    int(OpClass.BRANCH): FU_BRU,
}

#: Figure 7 verification-latency buckets.
VERIFY_BUCKETS = ("<4", "4", "5", "6", "7", ">7")

# Flat lookup tables for the fast scheduling loop.
_FU_OF_CLASS_LIST = fu_of_class_array(_FU_OF_CLASS)
_LAT_ISSUE, _LAT_RESULT = latency_arrays(PPC620_LATENCY)
_OP_HALT = int(Opcode.HALT)


@dataclass
class PPC620Result:
    """Everything the paper's 620 experiments measure, for one run."""

    config_name: str
    lvp_name: str
    instructions: int
    cycles: int
    l1_stats: CacheStats
    branch_stats: BranchStats
    bank_conflicts: int
    bank_conflict_cycles: int
    #: Correct-prediction verification-latency histogram (Figure 7).
    verify_histogram: dict[str, int]
    #: Per-FU (sum of operand wait cycles, instruction count) (Figure 8).
    fu_wait: dict[str, tuple[int, int]]
    loads: int = 0
    load_outcomes: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def bank_conflict_cycle_fraction(self) -> float:
        """Fraction of all cycles with a bank conflict (Figure 9)."""
        return self.bank_conflict_cycles / self.cycles if self.cycles else 0.0

    def average_wait(self, fu_name: str) -> float:
        """Average reservation-station operand wait for one FU class."""
        total, count = self.fu_wait[fu_name]
        return total / count if count else 0.0

    def counters(self) -> dict[str, int]:
        """Observability counters (see docs/observability.md)."""
        l1 = self.l1_stats
        branches = self.branch_stats
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "l1_accesses": l1.accesses,
            "l1_misses": l1.misses,
            "l1_hits": l1.accesses - l1.misses,
            "branches": branches.conditional + branches.indirect,
            "branch_mispredicts": branches.mispredicts,
            "bank_conflicts": self.bank_conflicts,
            "bank_conflict_cycles": self.bank_conflict_cycles,
            "rs_wait_cycles": sum(total for total, _ in
                                  self.fu_wait.values()),
        }


class _Pool:
    """A reservation-station pool: bounded slots with release times."""

    __slots__ = ("size", "releases")

    def __init__(self, size: int) -> None:
        self.size = size
        self.releases: list[int] = []

    def earliest_slot(self, candidate: int) -> int:
        """Earliest cycle >= candidate at which a slot is free."""
        releases = self.releases
        if len(releases) < self.size:
            return candidate
        # Slot frees when the oldest-releasing occupant leaves.
        bound = sorted(releases)[len(releases) - self.size]
        return max(candidate, bound)

    def allocate(self, release: int, now: int) -> None:
        """Occupy a slot until *release*, dropping entries freed by *now*."""
        self.releases = [r for r in self.releases if r > now]
        self.releases.append(release)


class _Units:
    """Functional-unit instances with per-instance next-free times."""

    __slots__ = ("free",)

    def __init__(self, count: int) -> None:
        self.free = [0] * count

    def issue_at(self, candidate: int, occupancy: int) -> int:
        """Issue on the earliest-free instance; returns the issue cycle."""
        best = min(range(len(self.free)), key=lambda i: self.free[i])
        cycle = max(candidate, self.free[best])
        self.free[best] = cycle + occupancy
        return cycle


class PPC620Model:
    """Cycle-level model of the 620/620+ with optional LVP annotations."""

    def __init__(self, config: PPC620Config) -> None:
        self.config = config

    def run(self, annotated: AnnotatedTrace, use_lvp: bool = True,
            engine: str | None = None) -> PPC620Result:
        """Schedule the whole trace; returns the run's measurements.

        ``engine`` selects the scheduling loop: ``"reference"`` is the
        original component-object implementation, ``"fast"`` inlines
        the same arithmetic (bit-identical; held so by the differential
        suite in ``tests/uarch``), and ``"auto"`` (default) picks the
        fast loop.  ``REPRO_MODEL_ENGINE`` overrides.
        """
        if resolve_model_engine(engine) == "fast":
            return self._run_fast(annotated, use_lvp)
        return self._run_reference(annotated, use_lvp)

    def _run_reference(self, annotated: AnnotatedTrace,
                       use_lvp: bool = True) -> PPC620Result:
        """The original scheduling loop (the oracle for ``fast``)."""
        config = self.config
        trace = annotated.trace
        outcomes = annotated.outcomes

        opcodes = trace.opcode.tolist()
        opclasses = trace.opclass.tolist()
        dsts = trace.dst.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addrs = trace.addr.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        outcome_list = outcomes.tolist()
        count = len(opcodes)

        latency = PPC620_LATENCY
        opcode_enum = [Opcode(o) for o in range(1, len(Opcode) + 1)]

        hierarchy = MemoryHierarchy(
            Cache(config.l1_size, config.l1_assoc, config.l1_line),
            Cache(config.l2_size, config.l2_assoc, config.l1_line),
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        banks = BankTracker(config.l1_banks, config.l1_line)
        # icache_size=0 models a perfect front end (used by unit tests
        # that pin down scheduling arithmetic).
        icache = (Cache(config.icache_size, config.icache_assoc,
                        config.l1_line)
                  if config.icache_size else None)
        predictor = BranchPredictor()

        pools = {
            FU_SCFX: _Pool(config.rs_scfx),
            FU_MCFX: _Pool(config.rs_mcfx),
            FU_FPU: _Pool(config.rs_fpu),
            FU_LSU: _Pool(config.rs_lsu),
            FU_BRU: _Pool(config.rs_bru),
        }
        units = {
            FU_SCFX: _Units(config.num_scfx),
            FU_MCFX: _Units(config.num_mcfx),
            FU_FPU: _Units(config.num_fpu),
            FU_LSU: _Units(config.num_lsu),
            FU_BRU: _Units(config.num_bru),
        }

        # Per-architectural-register producer state:
        #   avail_spec: earliest a dependent may consume (possibly a
        #       speculative predicted value),
        #   avail_real: when the true value is available,
        #   spec_until: verification time the consumer inherits,
        #   mispredicted: consumer must reissue if it consumed early.
        reg_spec = {}
        reg_real = {}
        reg_verify = {}
        reg_misp = {}

        # Store-to-load memory dependences (word granularity).
        store_ready: dict[int, int] = {}

        # In-order machine state.
        fetch_cycle = 0
        fetch_count = 0
        fetch_blocked_until = 0
        dispatch_cycle = 0
        dispatch_count = 0
        mem_dispatch_count = 0
        complete_cycle = 0
        complete_count = 0
        last_completion = 0
        # Ring buffers for structural resources freed at completion.
        dispatch_window: deque = deque()  # completion times, len <= cbuf
        gpr_ring: deque = deque()
        fpr_ring: deque = deque()
        # Instruction-buffer: dispatch times of last `ibuf` instructions.
        ibuf_ring: deque = deque()

        verify_hist = {bucket: 0 for bucket in VERIFY_BUCKETS}
        store_commits: list[tuple[int, int]] = []
        fu_wait_sum = [0, 0, 0, 0, 0]
        fu_wait_count = [0, 0, 0, 0, 0]
        outcome_counts = {o: 0 for o in LoadOutcome}
        num_loads = 0

        mispredict_penalty = config.mispredict_penalty

        for i in range(count):
            opcode_value = opcodes[i]
            opcode = opcode_enum[opcode_value - 1]
            opclass = opclasses[i]
            fu = _FU_OF_CLASS[opclass]
            lat = latency[opcode]

            # ---- fetch -------------------------------------------------
            candidate = max(fetch_cycle, fetch_blocked_until)
            if candidate == fetch_cycle and fetch_count >= config.fetch_width:
                candidate += 1
            if len(ibuf_ring) >= config.instruction_buffer:
                candidate = max(candidate, ibuf_ring[0])
            if icache is not None and not icache.access(pcs[i]):
                # Instruction-cache miss: fetch stalls for the L2 trip.
                candidate += config.l2_latency
            if candidate != fetch_cycle:
                fetch_cycle = candidate
                fetch_count = 0
            fetch_time = fetch_cycle
            fetch_count += 1

            # ---- dispatch ----------------------------------------------
            candidate = max(fetch_time + 1, dispatch_cycle)
            is_mem = fu == FU_LSU
            while True:
                if candidate > dispatch_cycle:
                    width_used = 0
                    mem_used = 0
                else:
                    width_used = dispatch_count
                    mem_used = mem_dispatch_count
                if width_used >= config.dispatch_width or (
                        is_mem and mem_used >= config.mem_per_cycle):
                    candidate += 1
                    continue
                break
            # Completion buffer slot (freed at completion).
            if len(dispatch_window) >= config.completion_buffer:
                candidate = max(candidate, dispatch_window[0])
                while (len(dispatch_window) >= config.completion_buffer
                        and dispatch_window[0] <= candidate):
                    dispatch_window.popleft()
            # Rename buffer for the destination register.
            dst = dsts[i]
            ring = None
            if dst > 0:
                if dst < 32:
                    ring = gpr_ring
                    limit = config.gpr_rename
                elif dst < 64:
                    ring = fpr_ring
                    limit = config.fpr_rename
            if ring is not None and len(ring) >= limit:
                candidate = max(candidate, ring[0])
                while len(ring) >= limit and ring[0] <= candidate:
                    ring.popleft()
            # Reservation-station slot.
            pool = pools[fu]
            candidate = pool.earliest_slot(candidate)
            if candidate > dispatch_cycle:
                dispatch_cycle = candidate
                dispatch_count = 0
                mem_dispatch_count = 0
            dispatch_time = dispatch_cycle
            dispatch_count += 1
            if is_mem:
                mem_dispatch_count += 1
            ibuf_ring.append(dispatch_time)
            if len(ibuf_ring) > config.instruction_buffer:
                ibuf_ring.popleft()

            # ---- operands ------------------------------------------------
            ready_spec = dispatch_time
            ready_real = dispatch_time
            spec_until = 0
            has_misp_source = False
            for src in (src1s[i], src2s[i]):
                if src <= 0:
                    continue
                ready_spec = max(ready_spec, reg_spec.get(src, 0))
                ready_real = max(ready_real, reg_real.get(src, 0))
                spec_until = max(spec_until, reg_verify.get(src, 0))
                if reg_misp.get(src, False):
                    has_misp_source = True

            wait = max(0, ready_spec - dispatch_time)
            fu_wait_sum[fu] += wait
            fu_wait_count[fu] += 1

            # Mispredicted-load sources: if this instruction would have
            # issued speculatively before the true value returned, it
            # reissues one cycle after the value comes back (the paper's
            # worst-case one-cycle penalty); otherwise no penalty.
            operand_time = ready_spec
            if has_misp_source:
                would_issue = max(dispatch_time + 1, ready_spec)
                if would_issue < ready_real:
                    operand_time = ready_real + 1
                else:
                    operand_time = ready_real

            # ---- issue / execute ------------------------------------------
            issue_candidate = max(dispatch_time + 1, operand_time)
            issue_time = units[fu].issue_at(issue_candidate, lat.issue)

            verify_time = 0
            outcome = outcome_list[i] if opclass == int(OpClass.LOAD) \
                else NOT_A_LOAD
            if opclass == int(OpClass.LOAD):
                num_loads += 1
                addr = addrs[i]
                word = addr & ~7
                # store-to-load dependence (forwarding at no extra cost)
                dep = store_ready.get(word, 0)
                if dep > issue_time:
                    issue_time = units[fu].issue_at(dep, lat.issue)
                if use_lvp and outcome == int(LoadOutcome.CONSTANT):
                    # CVU-verified: no cache access at all.
                    exec_done = issue_time + lat.result
                    verify_time = exec_done
                else:
                    access_cycle = issue_time + 1
                    banks.access(access_cycle, addr, can_defer=False)
                    penalty = hierarchy.load_penalty(addr)
                    exec_done = issue_time + lat.result + penalty
                    # Only loads whose value was actually forwarded
                    # need the extra value-comparison stage.
                    if use_lvp and outcome in (int(LoadOutcome.CORRECT),
                                               int(LoadOutcome.INCORRECT)):
                        verify_time = exec_done + 1
                if use_lvp and outcome != NOT_A_LOAD:
                    outcome_counts[LoadOutcome(outcome)] += 1
            elif opclass == int(OpClass.STORE):
                # Stores enter the store queue at execute and access the
                # cache banks when they commit; a committing store that
                # collides with a load's bank must retry (Section 6.5).
                addr = addrs[i]
                hierarchy.store_access(addr)
                exec_done = issue_time + lat.result
                store_ready[addr & ~7] = exec_done
            else:
                exec_done = issue_time + lat.result

            # ---- branches --------------------------------------------------
            if opclass == int(OpClass.BRANCH) and opcode != Opcode.HALT:
                target = pcs[i + 1] if i + 1 < count else 0
                correct = predictor.predict_and_update(
                    opcode, pcs[i], bool(takens[i]), target)
                if not correct:
                    fetch_blocked_until = max(
                        fetch_blocked_until,
                        exec_done + mispredict_penalty,
                    )

            # ---- producer bookkeeping ---------------------------------------
            is_load = opclass == int(OpClass.LOAD)
            predicted = (
                use_lvp and is_load and outcome in (
                    int(LoadOutcome.CORRECT), int(LoadOutcome.CONSTANT))
            )
            mispredicted = (
                use_lvp and is_load and outcome == int(LoadOutcome.INCORRECT)
            )
            if predicted:
                avail_spec = dispatch_time  # forwarded at dispatch
                avail_real = dispatch_time
                my_verify = max(spec_until, verify_time)
                bucket = verify_time - dispatch_time
                if bucket < 4:
                    verify_hist["<4"] += 1
                elif bucket > 7:
                    verify_hist[">7"] += 1
                else:
                    verify_hist[str(bucket)] += 1
            elif mispredicted:
                avail_spec = exec_done  # consumers wait for the real value
                avail_real = exec_done
                my_verify = max(spec_until, verify_time)
            else:
                avail_spec = exec_done
                avail_real = exec_done
                my_verify = spec_until

            if dst > 0:
                reg_spec[dst] = avail_spec
                reg_real[dst] = avail_real
                reg_verify[dst] = my_verify
                reg_misp[dst] = mispredicted

            # ---- reservation-station release ---------------------------------
            # Normal: the RS frees the cycle after issue.  Speculative
            # consumers hold theirs until their sources verify; loads
            # hold until their own verification (paper Section 4.1).
            if config.rs_retention:
                rs_release = max(issue_time + 1, spec_until, verify_time)
            else:
                rs_release = issue_time + 1
            pool.allocate(rs_release, dispatch_time)

            # ---- in-order completion -------------------------------------------
            finish = max(exec_done, my_verify, verify_time)
            candidate = max(finish + 1, last_completion)
            if candidate == complete_cycle:
                if complete_count >= config.complete_width:
                    candidate += 1
            if candidate > complete_cycle:
                complete_cycle = candidate
                complete_count = 0
            completion = complete_cycle
            complete_count += 1
            last_completion = completion
            if opclass == int(OpClass.STORE):
                store_commits.append((completion, addrs[i]))
            dispatch_window.append(completion)
            if ring is not None:
                ring.append(completion)

            # Keep the store-dependence map bounded.
            if len(store_ready) > 4096:
                store_ready.clear()

        # Stores commit against the full load bank-usage ledger: a
        # committing store that finds its bank busy (with a load from
        # either side of it in program order) retries next cycle.
        for commit_cycle, addr in store_commits:
            banks.access(commit_cycle, addr, can_defer=True)

        cycles = last_completion
        return PPC620Result(
            config_name=config.name,
            lvp_name=annotated.config.name if use_lvp else "none",
            instructions=count,
            cycles=cycles,
            l1_stats=hierarchy.l1.stats,
            branch_stats=predictor.stats,
            bank_conflicts=banks.conflicts,
            bank_conflict_cycles=banks.conflict_cycle_count,
            verify_histogram=verify_hist,
            fu_wait={
                FU_NAMES[f]: (fu_wait_sum[f], fu_wait_count[f])
                for f in range(5)
            },
            loads=num_loads,
            load_outcomes=outcome_counts,
        )

    def _run_fast(self, annotated: AnnotatedTrace,
                  use_lvp: bool = True) -> PPC620Result:
        """The inlined scheduling loop (bit-identical to ``reference``).

        Same arithmetic as :meth:`_run_reference`, with the per-event
        abstractions flattened: latency and FU lookup tables as flat
        lists, register scoreboards as lists instead of dicts, cache /
        branch-predictor / bank state as local variables, and the
        reservation-station and functional-unit helpers inlined.
        """
        config = self.config
        trace = annotated.trace

        opcodes = trace.opcode.tolist()
        opclasses = trace.opclass.tolist()
        dsts = trace.dst.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addrs = trace.addr.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        outcome_list = annotated.outcomes.tolist()
        count = len(opcodes)

        lat_issue = _LAT_ISSUE
        lat_result = _LAT_RESULT
        fu_of_class = _FU_OF_CLASS_LIST
        branch_kind = BRANCH_KIND
        op_halt = _OP_HALT
        cls_load = int(OpClass.LOAD)
        cls_store = int(OpClass.STORE)
        cls_branch = int(OpClass.BRANCH)

        # Cache objects validate geometry and own the stats containers;
        # the loop mutates their tag lists directly.
        l1 = Cache(config.l1_size, config.l1_assoc, config.l1_line)
        l2 = Cache(config.l2_size, config.l2_assoc, config.l1_line)
        l1_sets, l1_nsets, l1_assoc = l1._sets, l1.num_sets, l1.assoc
        l2_sets, l2_nsets, l2_assoc = l2._sets, l2.num_sets, l2.assoc
        l1_line = config.l1_line
        l2_latency = config.l2_latency
        miss_penalty = l2_latency + config.memory_latency
        l1_acc = l1_miss = l1_store_acc = 0
        if config.icache_size:
            icache = Cache(config.icache_size, config.icache_assoc,
                           config.l1_line)
            icache_sets, icache_nsets = icache._sets, icache.num_sets
            icache_assoc = icache.assoc
        else:
            icache_sets = None

        # Bank-usage ledger (BankTracker inlined; loads own a port, so
        # only the store-commit pass below can conflict).
        num_banks = config.l1_banks
        bank_usage: dict = {}
        bank_get = bank_usage.get
        conflicts = 0
        conflict_cycles: set = set()

        # Branch predictor (2-bit BHT + last-target BTB), inlined.
        bht = [1] * 2048
        bht_mask = 2047
        btb: dict = {}
        btb_get = btb.get
        n_cond = n_cond_misp = n_ind = n_ind_misp = 0

        pool_size = (config.rs_scfx, config.rs_mcfx, config.rs_fpu,
                     config.rs_lsu, config.rs_bru)
        pool_rel: list[list[int]] = [[], [], [], [], []]
        unit_free = [
            [0] * config.num_scfx, [0] * config.num_mcfx,
            [0] * config.num_fpu, [0] * config.num_lsu,
            [0] * config.num_bru,
        ]

        reg_spec = [0] * NUM_REGS
        reg_real = [0] * NUM_REGS
        reg_verify = [0] * NUM_REGS
        reg_misp = [False] * NUM_REGS

        store_ready: dict[int, int] = {}
        store_get = store_ready.get

        fetch_cycle = 0
        fetch_count = 0
        fetch_blocked_until = 0
        dispatch_cycle = 0
        dispatch_count = 0
        mem_dispatch_count = 0
        complete_cycle = 0
        complete_count = 0
        last_completion = 0
        dispatch_window: deque = deque()
        gpr_ring: deque = deque()
        fpr_ring: deque = deque()
        ibuf_ring: deque = deque()

        vh0 = vh1 = vh2 = vh3 = vh4 = vh5 = 0
        store_commits: list[tuple[int, int]] = []
        fu_wait_sum = [0, 0, 0, 0, 0]
        fu_wait_count = [0, 0, 0, 0, 0]
        oc = [0, 0, 0, 0]
        num_loads = 0

        fetch_width = config.fetch_width
        dispatch_width = config.dispatch_width
        complete_width = config.complete_width
        instruction_buffer = config.instruction_buffer
        completion_buffer = config.completion_buffer
        gpr_rename = config.gpr_rename
        fpr_rename = config.fpr_rename
        mem_per_cycle = config.mem_per_cycle
        mispredict_penalty = config.mispredict_penalty
        rs_retention = config.rs_retention

        for i in range(count):
            opv = opcodes[i]
            opclass = opclasses[i]
            fu = fu_of_class[opclass]
            li = lat_issue[opv]
            lr = lat_result[opv]

            # ---- fetch -------------------------------------------------
            candidate = fetch_cycle if fetch_cycle >= fetch_blocked_until \
                else fetch_blocked_until
            if candidate == fetch_cycle and fetch_count >= fetch_width:
                candidate += 1
            if len(ibuf_ring) >= instruction_buffer:
                first = ibuf_ring[0]
                if first > candidate:
                    candidate = first
            if icache_sets is not None:
                line = pcs[i] // l1_line
                lru = icache_sets[line % icache_nsets]
                if line in lru:
                    lru.remove(line)
                    lru.append(line)
                else:
                    lru.append(line)
                    if len(lru) > icache_assoc:
                        lru.pop(0)
                    candidate += l2_latency
            if candidate != fetch_cycle:
                fetch_cycle = candidate
                fetch_count = 0
            fetch_time = fetch_cycle
            fetch_count += 1

            # ---- dispatch ----------------------------------------------
            candidate = fetch_time + 1
            if dispatch_cycle > candidate:
                candidate = dispatch_cycle
            is_mem = fu == FU_LSU
            while True:
                if candidate > dispatch_cycle:
                    width_used = 0
                    mem_used = 0
                else:
                    width_used = dispatch_count
                    mem_used = mem_dispatch_count
                if width_used >= dispatch_width or (
                        is_mem and mem_used >= mem_per_cycle):
                    candidate += 1
                    continue
                break
            if len(dispatch_window) >= completion_buffer:
                first = dispatch_window[0]
                if first > candidate:
                    candidate = first
                while (len(dispatch_window) >= completion_buffer
                        and dispatch_window[0] <= candidate):
                    dispatch_window.popleft()
            dst = dsts[i]
            ring = None
            if dst > 0:
                if dst < 32:
                    ring = gpr_ring
                    limit = gpr_rename
                elif dst < 64:
                    ring = fpr_ring
                    limit = fpr_rename
            if ring is not None and len(ring) >= limit:
                first = ring[0]
                if first > candidate:
                    candidate = first
                while len(ring) >= limit and ring[0] <= candidate:
                    ring.popleft()
            rel = pool_rel[fu]
            psize = pool_size[fu]
            if len(rel) >= psize:
                bound = sorted(rel)[len(rel) - psize]
                if bound > candidate:
                    candidate = bound
            if candidate > dispatch_cycle:
                dispatch_cycle = candidate
                dispatch_count = 0
                mem_dispatch_count = 0
            dispatch_time = dispatch_cycle
            dispatch_count += 1
            if is_mem:
                mem_dispatch_count += 1
            ibuf_ring.append(dispatch_time)
            if len(ibuf_ring) > instruction_buffer:
                ibuf_ring.popleft()

            # ---- operands ----------------------------------------------
            ready_spec = dispatch_time
            ready_real = dispatch_time
            spec_until = 0
            has_misp_source = False
            s = src1s[i]
            if s > 0:
                v = reg_spec[s]
                if v > ready_spec:
                    ready_spec = v
                v = reg_real[s]
                if v > ready_real:
                    ready_real = v
                v = reg_verify[s]
                if v > spec_until:
                    spec_until = v
                if reg_misp[s]:
                    has_misp_source = True
            s = src2s[i]
            if s > 0:
                v = reg_spec[s]
                if v > ready_spec:
                    ready_spec = v
                v = reg_real[s]
                if v > ready_real:
                    ready_real = v
                v = reg_verify[s]
                if v > spec_until:
                    spec_until = v
                if reg_misp[s]:
                    has_misp_source = True

            fu_wait_sum[fu] += ready_spec - dispatch_time
            fu_wait_count[fu] += 1

            operand_time = ready_spec
            if has_misp_source:
                would_issue = dispatch_time + 1
                if ready_spec > would_issue:
                    would_issue = ready_spec
                if would_issue < ready_real:
                    operand_time = ready_real + 1
                else:
                    operand_time = ready_real

            # ---- issue / execute ---------------------------------------
            issue_candidate = dispatch_time + 1
            if operand_time > issue_candidate:
                issue_candidate = operand_time
            free = unit_free[fu]
            n_inst = len(free)
            best = 0
            bf = free[0]
            if n_inst > 1:
                for j in range(1, n_inst):
                    if free[j] < bf:
                        bf = free[j]
                        best = j
            issue_time = issue_candidate if issue_candidate > bf else bf
            free[best] = issue_time + li

            verify_time = 0
            is_load = opclass == cls_load
            outcome = outcome_list[i] if is_load else NOT_A_LOAD
            if is_load:
                num_loads += 1
                addr = addrs[i]
                dep = store_get(addr & ~7, 0)
                if dep > issue_time:
                    best = 0
                    bf = free[0]
                    if n_inst > 1:
                        for j in range(1, n_inst):
                            if free[j] < bf:
                                bf = free[j]
                                best = j
                    issue_time = dep if dep > bf else bf
                    free[best] = issue_time + li
                if use_lvp and outcome == 3:  # CONSTANT: no cache access
                    exec_done = issue_time + lr
                    verify_time = exec_done
                else:
                    line = addr // l1_line
                    key = (issue_time + 1, line % num_banks)
                    bank_usage[key] = bank_get(key, 0) + 1
                    lru = l1_sets[line % l1_nsets]
                    l1_acc += 1
                    if line in lru:
                        lru.remove(line)
                        lru.append(line)
                        exec_done = issue_time + lr
                    else:
                        l1_miss += 1
                        lru.append(line)
                        if len(lru) > l1_assoc:
                            lru.pop(0)
                        lru = l2_sets[line % l2_nsets]
                        l2.stats.accesses += 1
                        if line in lru:
                            lru.remove(line)
                            lru.append(line)
                            exec_done = issue_time + lr + l2_latency
                        else:
                            l2.stats.misses += 1
                            lru.append(line)
                            if len(lru) > l2_assoc:
                                lru.pop(0)
                            exec_done = issue_time + lr + miss_penalty
                    if use_lvp and (outcome == 2 or outcome == 1):
                        verify_time = exec_done + 1
                if use_lvp and outcome != NOT_A_LOAD:
                    oc[outcome] += 1
            elif opclass == cls_store:
                addr = addrs[i]
                line = addr // l1_line
                lru = l1_sets[line % l1_nsets]
                l1_store_acc += 1
                if line in lru:
                    lru.remove(line)
                    lru.append(line)
                lru = l2_sets[line % l2_nsets]
                l2.stats.store_accesses += 1
                if line in lru:
                    lru.remove(line)
                    lru.append(line)
                exec_done = issue_time + lr
                store_ready[addr & ~7] = exec_done
            else:
                exec_done = issue_time + lr

            # ---- branches ----------------------------------------------
            if opclass == cls_branch and opv != op_halt:
                bk = branch_kind[opv]
                if bk == 1:
                    bidx = (pcs[i] >> 2) & bht_mask
                    ctr = bht[bidx]
                    if takens[i]:
                        if ctr < 3:
                            bht[bidx] = ctr + 1
                        correct = ctr >= 2
                    else:
                        if ctr > 0:
                            bht[bidx] = ctr - 1
                        correct = ctr < 2
                    n_cond += 1
                    if not correct:
                        n_cond_misp += 1
                elif bk == 2:
                    target = pcs[i + 1] if i + 1 < count else 0
                    bidx = (pcs[i] >> 2) & 255
                    correct = btb_get(bidx) == target
                    btb[bidx] = target
                    n_ind += 1
                    if not correct:
                        n_ind_misp += 1
                else:
                    correct = True
                if not correct:
                    v = exec_done + mispredict_penalty
                    if v > fetch_blocked_until:
                        fetch_blocked_until = v

            # ---- producer bookkeeping ----------------------------------
            predicted = (use_lvp and is_load
                         and (outcome == 2 or outcome == 3))
            mispredicted = use_lvp and is_load and outcome == 1
            if predicted:
                avail_spec = dispatch_time
                avail_real = dispatch_time
                my_verify = spec_until if spec_until >= verify_time \
                    else verify_time
                bucket = verify_time - dispatch_time
                if bucket < 4:
                    vh0 += 1
                elif bucket > 7:
                    vh5 += 1
                elif bucket == 4:
                    vh1 += 1
                elif bucket == 5:
                    vh2 += 1
                elif bucket == 6:
                    vh3 += 1
                else:
                    vh4 += 1
            elif mispredicted:
                avail_spec = exec_done
                avail_real = exec_done
                my_verify = spec_until if spec_until >= verify_time \
                    else verify_time
            else:
                avail_spec = exec_done
                avail_real = exec_done
                my_verify = spec_until

            if dst > 0:
                reg_spec[dst] = avail_spec
                reg_real[dst] = avail_real
                reg_verify[dst] = my_verify
                reg_misp[dst] = mispredicted

            # ---- reservation-station release ---------------------------
            rs_release = issue_time + 1
            if rs_retention:
                if spec_until > rs_release:
                    rs_release = spec_until
                if verify_time > rs_release:
                    rs_release = verify_time
            nrel = [r for r in rel if r > dispatch_time]
            nrel.append(rs_release)
            pool_rel[fu] = nrel

            # ---- in-order completion -----------------------------------
            finish = exec_done
            if my_verify > finish:
                finish = my_verify
            if verify_time > finish:
                finish = verify_time
            candidate = finish + 1
            if last_completion > candidate:
                candidate = last_completion
            if candidate == complete_cycle \
                    and complete_count >= complete_width:
                candidate += 1
            if candidate > complete_cycle:
                complete_cycle = candidate
                complete_count = 0
            completion = complete_cycle
            complete_count += 1
            last_completion = completion
            if opclass == cls_store:
                store_commits.append((completion, addrs[i]))
            dispatch_window.append(completion)
            if ring is not None:
                ring.append(completion)

            if len(store_ready) > 4096:
                store_ready.clear()

        # Store-commit bank retries (single-ported banks for stores).
        for commit_cycle, addr in store_commits:
            bank = (addr // l1_line) % num_banks
            actual = commit_cycle
            while bank_get((actual, bank), 0) >= 1:
                conflicts += 1
                conflict_cycles.add(actual)
                actual += 1
            key = (actual, bank)
            bank_usage[key] = bank_get(key, 0) + 1

        l1.stats.accesses = l1_acc
        l1.stats.misses = l1_miss
        l1.stats.store_accesses = l1_store_acc
        return PPC620Result(
            config_name=config.name,
            lvp_name=annotated.config.name if use_lvp else "none",
            instructions=count,
            cycles=last_completion,
            l1_stats=l1.stats,
            branch_stats=BranchStats(
                conditional=n_cond,
                conditional_mispredicts=n_cond_misp,
                indirect=n_ind,
                indirect_mispredicts=n_ind_misp,
            ),
            bank_conflicts=conflicts,
            bank_conflict_cycles=len(conflict_cycles),
            verify_histogram={
                "<4": vh0, "4": vh1, "5": vh2, "6": vh3,
                "7": vh4, ">7": vh5,
            },
            fu_wait={
                FU_NAMES[f]: (fu_wait_sum[f], fu_wait_count[f])
                for f in range(5)
            },
            loads=num_loads,
            load_outcomes={o: oc[int(o)] for o in LoadOutcome},
        )
