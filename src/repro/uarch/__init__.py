"""Microarchitectural timing models: PowerPC 620/620+ and Alpha 21164."""

from repro.uarch.axp21164.config import AXP21164, AXP21164Config
from repro.uarch.axp21164.model import AXP21164Model, AXP21164Result
from repro.uarch.engine import MODEL_ENGINES, resolve_model_engine
from repro.uarch.ppc620.config import PPC620, PPC620_PLUS, PPC620Config
from repro.uarch.ppc620.model import FU_NAMES, PPC620Model, PPC620Result

__all__ = [
    "AXP21164", "AXP21164Config", "AXP21164Model", "AXP21164Result",
    "PPC620", "PPC620_PLUS", "PPC620Config",
    "FU_NAMES", "PPC620Model", "PPC620Result",
    "MODEL_ENGINES", "resolve_model_engine",
]
