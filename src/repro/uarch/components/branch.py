"""Branch prediction: a 2-bit-counter BHT plus a simple BTB.

The 620 carries a branch history table and branch target buffer; the
21164 a per-line history.  Both machine models share this predictor:

* conditional branches predict taken/not-taken via 2-bit counters,
* indirect branches (returns, jump tables, virtual calls) predict via a
  last-target BTB,
* unconditional direct branches always predict correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import CONDITIONAL_BRANCHES, INDIRECT_BRANCHES, Opcode
from repro.isa.program import INSTR_SIZE


@dataclass
class BranchStats:
    """Prediction accounting."""

    conditional: int = 0
    conditional_mispredicts: int = 0
    indirect: int = 0
    indirect_mispredicts: int = 0

    @property
    def mispredicts(self) -> int:
        """Total mispredictions."""
        return self.conditional_mispredicts + self.indirect_mispredicts


class BranchPredictor:
    """2-bit BHT + last-target BTB."""

    def __init__(self, bht_entries: int = 2048,
                 btb_entries: int = 256) -> None:
        self._bht_mask = bht_entries - 1
        self._btb_mask = btb_entries - 1
        self._bht = [1] * bht_entries  # weakly not-taken
        self._btb: dict[int, int] = {}
        self.stats = BranchStats()

    def predict_and_update(self, opcode: Opcode, pc: int, taken: bool,
                           target: int) -> bool:
        """Predict the branch at *pc*; train; return True if correct.

        *taken* and *target* are the trace's actual outcome.
        """
        if opcode in CONDITIONAL_BRANCHES:
            index = (pc // INSTR_SIZE) & self._bht_mask
            counter = self._bht[index]
            predicted_taken = counter >= 2
            if taken:
                if counter < 3:
                    self._bht[index] = counter + 1
            else:
                if counter > 0:
                    self._bht[index] = counter - 1
            correct = predicted_taken == taken
            self.stats.conditional += 1
            if not correct:
                self.stats.conditional_mispredicts += 1
            return correct
        if opcode in INDIRECT_BRANCHES:
            index = (pc // INSTR_SIZE) & self._btb_mask
            predicted = self._btb.get(index)
            self._btb[index] = target
            correct = predicted == target
            self.stats.indirect += 1
            if not correct:
                self.stats.indirect_mispredicts += 1
            return correct
        # Direct unconditional (J, JAL) and HALT: always predicted.
        return True
