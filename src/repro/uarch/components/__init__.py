"""Shared microarchitectural components: caches, banking, branch prediction."""

from repro.uarch.components.branch import BranchPredictor, BranchStats
from repro.uarch.components.cache import (
    BankTracker,
    Cache,
    CacheStats,
    MemoryHierarchy,
)
from repro.uarch.components.latencies import (
    AXP21164_LATENCY,
    Latency,
    PPC620_LATENCY,
)

__all__ = [
    "BranchPredictor", "BranchStats", "BankTracker", "Cache", "CacheStats",
    "MemoryHierarchy", "AXP21164_LATENCY", "Latency", "PPC620_LATENCY",
]
