"""Instruction issue/result latencies (paper Table 5).

The paper's Table 5 gives, for each instruction class, the issue and
result latencies on the PowerPC 620 and the Alpha AXP 21164:

==================  ===========  ============  =============  ==============
Class               620 issue    620 result    21164 issue    21164 result
==================  ===========  ============  =============  ==============
Simple integer      1            1             1              1
Complex integer     1-35         1-35          16             16
Load/store          1            2             1              2
Simple FP           1            3             1              4
Complex FP          18           18            1              36-65
Branch (pred/misp)  1            0/1+          1              0/4
==================  ===========  ============  =============  ==============

Ranges collapse to concrete per-opcode values here: complex-integer
covers multiply (cheap end) through divide (expensive end), and
complex-FP divide takes the middle of the 21164's iterative range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OP_CLASS, Opcode, OpClass


@dataclass(frozen=True)
class Latency:
    """Issue occupancy and result latency of one instruction.

    ``issue`` is how many cycles the functional unit is busy (1 for
    fully pipelined); ``result`` is operation start to value available.
    """

    issue: int
    result: int


def _table(simple_int, mul, div, spr, load, store, fp_simple, fp_div,
           branch) -> dict[Opcode, Latency]:
    """Expand per-class latencies into a per-opcode table."""
    table: dict[Opcode, Latency] = {}
    for op in Opcode:
        op_class = OP_CLASS[op]
        if op_class is OpClass.SIMPLE_INT:
            table[op] = simple_int
        elif op_class is OpClass.COMPLEX_INT:
            if op is Opcode.MUL:
                table[op] = mul
            elif op in (Opcode.DIV, Opcode.REM):
                table[op] = div
            else:  # LR/CTR moves (mfspr-style)
                table[op] = spr
        elif op_class is OpClass.LOAD:
            table[op] = load
        elif op_class is OpClass.STORE:
            table[op] = store
        elif op_class is OpClass.FP_SIMPLE:
            table[op] = fp_simple
        elif op_class is OpClass.FP_COMPLEX:
            table[op] = fp_div
        else:
            table[op] = branch
    return table


#: PowerPC 620 latencies (Table 5, columns 2-3).
PPC620_LATENCY: dict[Opcode, Latency] = _table(
    simple_int=Latency(1, 1),
    mul=Latency(4, 4),  # low end of the 1-35 complex-integer range
    div=Latency(35, 35),  # high end (non-pipelined divide)
    spr=Latency(3, 3),  # mfspr/mtspr-style moves
    load=Latency(1, 2),
    store=Latency(1, 2),
    fp_simple=Latency(1, 3),
    fp_div=Latency(18, 18),  # non-pipelined
    branch=Latency(1, 1),
)

#: Alpha AXP 21164 latencies (Table 5, columns 4-5).
AXP21164_LATENCY: dict[Opcode, Latency] = _table(
    simple_int=Latency(1, 1),
    mul=Latency(16, 16),
    div=Latency(16, 16),
    spr=Latency(1, 1),
    load=Latency(1, 2),
    store=Latency(1, 2),
    fp_simple=Latency(1, 4),
    fp_div=Latency(1, 50),  # middle of the 36-65 iterative range
    branch=Latency(1, 1),
)

#: Branch misprediction penalties (Table 5 "pred/mispr" row).
PPC620_MISPREDICT_PENALTY = 1
AXP21164_MISPREDICT_PENALTY = 4
