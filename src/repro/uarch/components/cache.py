"""Data cache models: set-associative L1 with banking, and a unified L2.

The 620 model uses a 32 KB 8-way dual-banked L1 (as the paper notes);
the 21164 model uses an 8 KB direct-mapped dual-ported L1.  Both back
onto a unified L2.  Replacement is LRU.  The cache is write-through,
no-write-allocate (the 620's data cache policy for our purposes --
stores probe the bank but do not allocate lines).

The bank tracker records which banks are used in which cycle so the
timing models can detect load/store bank conflicts (paper Section 6.5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache level."""

    accesses: int = 0
    misses: int = 0
    store_accesses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per (load) access."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, LRU cache level."""

    def __init__(self, size: int, assoc: int, line_size: int = 32) -> None:
        if size % (assoc * line_size):
            raise ValueError("cache size must divide evenly into sets")
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        # Per set: list of tags in LRU order (most recent last).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_size
        return line % self.num_sets, line

    def access(self, addr: int, is_store: bool = False,
               allocate: bool = True) -> bool:
        """Access the cache; returns True on hit.

        Loads allocate on miss; stores are write-through and (with
        ``allocate=False`` semantics applied automatically) do not.
        """
        set_index, tag = self._locate(addr)
        lru = self._sets[set_index]
        if is_store:
            self.stats.store_accesses += 1
        else:
            self.stats.accesses += 1
        if tag in lru:
            lru.remove(tag)
            lru.append(tag)
            return True
        if not is_store:
            self.stats.misses += 1
            if allocate:
                lru.append(tag)
                if len(lru) > self.assoc:
                    lru.pop(0)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]


class MemoryHierarchy:
    """L1 + L2 with fixed service latencies.

    ``load_latency(addr)`` returns the extra cycles beyond the pipelined
    L1 access that a load needs (0 on an L1 hit).
    """

    def __init__(self, l1: Cache, l2: Cache, l2_latency: int = 8,
                 memory_latency: int = 40) -> None:
        self.l1 = l1
        self.l2 = l2
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency

    def load_penalty(self, addr: int) -> int:
        """Extra cycles for a load at *addr*; updates cache state."""
        if self.l1.access(addr):
            return 0
        if self.l2.access(addr):
            return self.l2_latency
        return self.l2_latency + self.memory_latency

    def store_access(self, addr: int) -> None:
        """Write-through store: update both levels' state."""
        self.l1.access(addr, is_store=True)
        self.l2.access(addr, is_store=True)


class BankTracker:
    """Per-cycle bank-usage ledger for conflict detection.

    The 620's data cache is dual-banked: in any cycle a load and a store
    to the same bank conflict and the store retries next cycle.  The
    tracker counts both the number of conflicts and the number of
    distinct cycles in which at least one conflict occurred (the paper's
    Figure 9 metric).
    """

    def __init__(self, num_banks: int = 2, line_size: int = 32,
                 ports_per_bank: int = 1) -> None:
        self.num_banks = num_banks
        self.line_size = line_size
        self.ports_per_bank = ports_per_bank
        self._usage: dict[tuple[int, int], int] = defaultdict(int)
        self.conflicts = 0
        self._conflict_cycles: set[int] = set()

    def bank_of(self, addr: int) -> int:
        """Bank servicing *addr* (line-interleaved)."""
        return (addr // self.line_size) % self.num_banks

    def access(self, cycle: int, addr: int, can_defer: bool) -> int:
        """Record an access; returns the cycle it actually occurs.

        Accesses that exceed a bank's ports conflict; deferrable
        accesses (stores) retry in following cycles, others (loads,
        which own a dedicated port in the 620) proceed regardless.
        """
        bank = self.bank_of(addr)
        actual = cycle
        if can_defer:
            while self._usage[(actual, bank)] >= self.ports_per_bank:
                self.conflicts += 1
                self._conflict_cycles.add(actual)
                actual += 1
        self._usage[(actual, bank)] += 1
        return actual

    @property
    def conflict_cycle_count(self) -> int:
        """Number of distinct cycles with at least one bank conflict."""
        return len(self._conflict_cycles)
