"""Timing-model execution engines (see docs/performance.md).

Both machine models carry two scheduling loops: the ``reference``
loop -- the original, component-object implementation that the unit
tests pin down -- and a ``fast`` loop with the same arithmetic inlined
(latency tables as flat lists, register scoreboards as lists, cache
and branch-predictor state as local variables).  The two are held
bit-identical by the differential suite in ``tests/uarch``; ``auto``
(the default) picks the fast loop.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError
from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    INDIRECT_BRANCHES,
    OP_CLASS,
    Opcode,
    OpClass,
)

#: Recognised values of the ``engine`` knob / ``REPRO_MODEL_ENGINE``.
MODEL_ENGINES = ("auto", "reference", "fast")


def resolve_model_engine(engine: str | None) -> str:
    """Resolve the model-engine knob to ``"reference"`` or ``"fast"``.

    ``REPRO_MODEL_ENGINE`` overrides the argument; ``"auto"`` (the
    default) selects the fast loop.
    """
    env = os.environ.get("REPRO_MODEL_ENGINE")
    if env:
        engine = env
    if engine is None:
        engine = "auto"
    if engine not in MODEL_ENGINES:
        raise ConfigError(
            f"unknown model engine {engine!r} "
            f"(choose from {', '.join(MODEL_ENGINES)})"
        )
    return "fast" if engine == "auto" else engine


def latency_arrays(table) -> tuple[list[int], list[int]]:
    """Flatten a per-Opcode latency dict into opcode-int-indexed lists."""
    size = max(int(op) for op in Opcode) + 1
    issue = [0] * size
    result = [0] * size
    for op, lat in table.items():
        issue[int(op)] = lat.issue
        result[int(op)] = lat.result
    return issue, result


def _branch_kinds() -> list[int]:
    """Per-opcode branch taxonomy: 1 conditional, 2 indirect, 0 other."""
    size = max(int(op) for op in Opcode) + 1
    kinds = [0] * size
    for op in Opcode:
        if op in CONDITIONAL_BRANCHES:
            kinds[int(op)] = 1
        elif op in INDIRECT_BRANCHES:
            kinds[int(op)] = 2
    return kinds


#: Per-opcode branch kind (1 = conditional, 2 = indirect, 0 = other).
BRANCH_KIND: list[int] = _branch_kinds()


def fu_of_class_array(mapping: dict[int, int]) -> list[int]:
    """Flatten an {opclass int: fu id} dict into an opclass-indexed list."""
    size = max(int(c) for c in OpClass) + 1
    flat = [0] * size
    for cls, fu in mapping.items():
        flat[cls] = fu
    return flat


# Re-exported for fast loops that classify by OpClass int.
__all__ = [
    "MODEL_ENGINES", "resolve_model_engine", "latency_arrays",
    "BRANCH_KIND", "fu_of_class_array", "OP_CLASS",
]
