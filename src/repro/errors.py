"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad operand, unknown opcode...)."""


class LinkError(ReproError):
    """Symbol resolution failed while finalizing a program."""


class ExecutionError(ReproError):
    """The functional simulator hit an illegal state (bad address, ...)."""


class ExecutionLimitExceeded(ExecutionError):
    """The functional simulator exceeded its instruction budget.

    Raised instead of looping forever when a workload fails to halt.
    """


class ConfigError(ReproError):
    """An LVP-unit or machine configuration is invalid."""


class TraceError(ReproError):
    """A trace is malformed or inconsistent with what a consumer expects."""


class FaultError(ReproError):
    """A fault-injection request is invalid or a deliberate fault fired.

    Raised by :mod:`repro.faults` for malformed fault specifications and
    by the harness when a sabotage knob (``REPRO_SABOTAGE``) deliberately
    fails a benchmark to exercise the degradation paths.
    """


class RetryableError(ReproError):
    """Base class for *transient* failures that are safe to retry.

    The split is the retry contract of the whole harness: an error
    deriving from this class (lock contention, a worker lost to a
    crash, an injected transient I/O fault) may succeed on a clean
    re-execution, so the session retries it with exponential backoff
    (:mod:`repro.harness.retry`) before recording a
    :class:`BenchmarkFailure`.  Every other error is terminal: retrying
    would deterministically fail again, so it is recorded immediately.
    """


class CacheLockTimeout(RetryableError):
    """The trace cache's advisory lock could not be acquired in time.

    Raised instead of blocking forever when another process wedges while
    holding the cache directory lock (``REPRO_LOCK_TIMEOUT``, default
    60s).  Retryable: the holder usually finishes or dies, and the
    cache is an accelerator only -- a retried stage can also regenerate.
    """


class TransientFaultError(FaultError, RetryableError):
    """A deliberately injected *transient* fault (``REPRO_TRANSIENT``).

    Fails a benchmark's stage for the first N attempts and then lets it
    succeed, proving the retry-with-backoff path end to end.
    """


class UnitTimeoutError(ReproError):
    """A work unit exceeded the per-unit watchdog (``--unit-timeout``).

    Terminal, not retryable: a hung computation is assumed to hang
    again, so the unit's benchmark is footnoted for this run instead of
    burning the retry budget re-hanging.
    """


class JournalError(ReproError):
    """A run journal, manifest, or checkpoint is unusable.

    Raised when ``--resume`` names an unknown run, the manifest does not
    match the current suite/version, or a journal is damaged beyond the
    tolerated trailing truncation.
    """


class WorkerCrashError(RetryableError):
    """A parallel worker process died before returning its results.

    Recorded as the ``cause`` of the :class:`BenchmarkFailure` that the
    parallel engine synthesizes for work lost to a crashed (killed,
    segfaulted, out-of-memory...) worker, so the affected benchmark is
    footnoted like any other failure instead of aborting the run.
    Retryable: the engine re-runs lost shards (with backoff) before
    giving up on them.
    """


class BenchmarkFailure(ReproError):
    """One benchmark failed at one pipeline stage.

    The harness records these instead of aborting a whole run: exhibits
    render with the failed benchmark footnoted, and ``experiment all``
    completes (with a non-zero exit status).  Carries the failing
    ``benchmark``, the ``stage`` (``trace``/``annotate``/``model``, or
    ``worker`` for work lost to a crashed parallel worker), the codegen
    ``target``, and the original exception as ``cause``.
    """

    def __init__(self, benchmark: str, stage: str, target: str,
                 cause: BaseException) -> None:
        super().__init__(
            f"{benchmark} [{target}] failed at the {stage} stage: "
            f"{type(cause).__name__}: {cause}"
        )
        self.benchmark = benchmark
        self.stage = stage
        self.target = target
        self.cause = cause

    def __reduce__(self):
        # BaseException's default reduce replays ``args`` (the formatted
        # message) into __init__, which takes four arguments; rebuild
        # from the structured fields so failures survive the pickle trip
        # back from parallel worker processes.
        return (type(self), (self.benchmark, self.stage, self.target,
                             self.cause))
