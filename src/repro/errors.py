"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

import errno

#: Errnos that mean "the machine ran out of a resource" (disk space,
#: quota, file descriptors), not "the code is wrong".  The guardrails
#: map these onto :class:`ResourceExhaustedError` so callers degrade
#: (evict, skip the cache, stop journalling) instead of crashing.
RESOURCE_ERRNOS = frozenset({
    errno.ENOSPC, errno.EDQUOT, errno.EMFILE, errno.ENFILE,
})


def is_resource_exhaustion(exc: BaseException) -> bool:
    """True when *exc* is an OSError caused by resource exhaustion."""
    return isinstance(exc, OSError) and exc.errno in RESOURCE_ERRNOS


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad operand, unknown opcode...)."""


class LinkError(ReproError):
    """Symbol resolution failed while finalizing a program."""


class ExecutionError(ReproError):
    """The functional simulator hit an illegal state (bad address, ...)."""


class ExecutionLimitExceeded(ExecutionError):
    """The functional simulator exceeded its instruction budget.

    Raised instead of looping forever when a workload fails to halt.
    """


class ConfigError(ReproError):
    """An LVP-unit or machine configuration is invalid."""


class TraceError(ReproError):
    """A trace is malformed or inconsistent with what a consumer expects."""


class FaultError(ReproError):
    """A fault-injection request is invalid or a deliberate fault fired.

    Raised by :mod:`repro.faults` for malformed fault specifications and
    by the harness when a sabotage knob (``REPRO_SABOTAGE``) deliberately
    fails a benchmark to exercise the degradation paths.
    """


class RetryableError(ReproError):
    """Base class for *transient* failures that are safe to retry.

    The split is the retry contract of the whole harness: an error
    deriving from this class (lock contention, a worker lost to a
    crash, an injected transient I/O fault) may succeed on a clean
    re-execution, so the session retries it with exponential backoff
    (:mod:`repro.harness.retry`) before recording a
    :class:`BenchmarkFailure`.  Every other error is terminal: retrying
    would deterministically fail again, so it is recorded immediately.
    """


class CacheLockTimeout(RetryableError):
    """The trace cache's advisory lock could not be acquired in time.

    Raised instead of blocking forever when another process wedges while
    holding the cache directory lock (``REPRO_LOCK_TIMEOUT``, default
    60s).  Retryable: the holder usually finishes or dies, and the
    cache is an accelerator only -- a retried stage can also regenerate.
    """


class TransientFaultError(FaultError, RetryableError):
    """A deliberately injected *transient* fault (``REPRO_TRANSIENT``).

    Fails a benchmark's stage for the first N attempts and then lets it
    succeed, proving the retry-with-backoff path end to end.
    """


class ResourceExhaustedError(RetryableError):
    """The machine ran out of disk space, quota, or file descriptors.

    Raised where an ``ENOSPC``/``EDQUOT``/``EMFILE``/``ENFILE`` from
    the operating system crosses a harness boundary (trace-cache
    store/load, journal checkpoints).  Retryable: space and descriptors
    are routinely freed by other processes, and the cache/journal
    layers additionally degrade (LRU eviction, journalling stops with
    a resume hint) before this escapes to the retry machinery.
    """


class TierDivergenceError(ReproError):
    """A fast execution tier disagreed with its oracle tier.

    Raised by the divergence sentinel
    (:class:`repro.harness.guard.TierGuard`) when a sampled re-execution
    on the oracle tier (interpreter, general annotate kernel, reference
    timing loop) produces a different result field-for-field.  Terminal
    on purpose -- re-running the same deterministic fast tier would
    diverge again -- but the guard catches it itself and *demotes* the
    unit to the oracle tier instead of failing the benchmark.
    """

    def __init__(self, stage: str, unit: str,
                 differences: list[str]) -> None:
        preview = "; ".join(differences[:3])
        if len(differences) > 3:
            preview += f"; ... {len(differences) - 3} more"
        super().__init__(
            f"{stage} fast tier diverged from its oracle on {unit}: "
            f"{preview}")
        self.stage = stage
        self.unit = unit
        self.differences = list(differences)


class MemoryBudgetError(ReproError):
    """A worker's resident set exceeded ``REPRO_RSS_LIMIT_MB``.

    Terminal, like :class:`UnitTimeoutError`: a unit that blew the
    memory budget once is assumed to blow it again, so its benchmark
    is footnoted for this run instead of retried -- and, crucially,
    the worker survives to finish its other benchmarks instead of
    being OOM-killed with all of them.
    """


class UnitTimeoutError(ReproError):
    """A work unit exceeded the per-unit watchdog (``--unit-timeout``).

    Terminal, not retryable: a hung computation is assumed to hang
    again, so the unit's benchmark is footnoted for this run instead of
    burning the retry budget re-hanging.
    """


class ServeError(ReproError):
    """Base class for failures of the long-lived simulation service.

    Raised by :mod:`repro.serve` -- the daemon, its scheduler, and the
    client -- for service-shaped failures (overload, deadlines, open
    circuits, malformed protocol frames).  Each concrete subclass maps
    onto one ``repro.serve/v1`` protocol error kind and, over the HTTP
    listener, one status code (see :mod:`repro.serve.protocol`).
    """


class ServiceOverloadError(ServeError):
    """The service shed this request instead of queueing it.

    The 429 of the serve layer: raised when the scheduler's bounded
    queue is past its high-water mark (or the server is draining), so
    load past capacity degrades to fast, explicit rejections instead of
    unbounded queue growth and collapse.  ``retry_after_s`` is the
    scheduler's backoff hint for the client.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)

    def __reduce__(self):
        return (type(self), (self.args[0], self.retry_after_s))


class DeadlineExceededError(ServeError):
    """A request ran past its deadline and was abandoned.

    Raised when the per-request deadline -- enforced inside the worker
    by the same SIGALRM watchdog that bounds experiment work units, and
    backstopped by the scheduler's own timer -- expires before the
    result is ready.  Terminal for the request; the circuit breaker
    counts it as a failure of the request's subject.
    """


class CircuitOpenError(ServeError):
    """The request's subject is circuit-broken after repeated failures.

    A benchmark (or exhibit) that keeps failing stops consuming worker
    slots: after ``breaker_threshold`` consecutive failures its circuit
    opens and requests are rejected outright for a cooldown period,
    after which a single probe request is admitted (half-open) and a
    success closes the circuit again.
    """


class ProtocolError(ServeError):
    """A serve request or response frame is malformed.

    Raised for oversized frames, non-JSON payloads, unknown operations,
    or a protocol version this build does not speak.  Maps onto the
    ``bad_request`` error kind (HTTP 400).
    """


class JournalError(ReproError):
    """A run journal, manifest, or checkpoint is unusable.

    Raised when ``--resume`` names an unknown run, the manifest does not
    match the current suite/version, or a journal is damaged beyond the
    tolerated trailing truncation.
    """


class WorkerCrashError(RetryableError):
    """A parallel worker process died before returning its results.

    Recorded as the ``cause`` of the :class:`BenchmarkFailure` that the
    parallel engine synthesizes for work lost to a crashed (killed,
    segfaulted, out-of-memory...) worker, so the affected benchmark is
    footnoted like any other failure instead of aborting the run.
    Retryable: the engine re-runs lost shards (with backoff) before
    giving up on them.
    """


class BenchmarkFailure(ReproError):
    """One benchmark failed at one pipeline stage.

    The harness records these instead of aborting a whole run: exhibits
    render with the failed benchmark footnoted, and ``experiment all``
    completes (with a non-zero exit status).  Carries the failing
    ``benchmark``, the ``stage`` (``trace``/``annotate``/``model``, or
    ``worker`` for work lost to a crashed parallel worker), the codegen
    ``target``, and the original exception as ``cause``.
    """

    def __init__(self, benchmark: str, stage: str, target: str,
                 cause: BaseException) -> None:
        super().__init__(
            f"{benchmark} [{target}] failed at the {stage} stage: "
            f"{type(cause).__name__}: {cause}"
        )
        self.benchmark = benchmark
        self.stage = stage
        self.target = target
        self.cause = cause

    def __reduce__(self):
        # BaseException's default reduce replays ``args`` (the formatted
        # message) into __init__, which takes four arguments; rebuild
        # from the structured fields so failures survive the pickle trip
        # back from parallel worker processes.
        return (type(self), (self.benchmark, self.stage, self.target,
                             self.cause))
