"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad operand, unknown opcode...)."""


class LinkError(ReproError):
    """Symbol resolution failed while finalizing a program."""


class ExecutionError(ReproError):
    """The functional simulator hit an illegal state (bad address, ...)."""


class ExecutionLimitExceeded(ExecutionError):
    """The functional simulator exceeded its instruction budget.

    Raised instead of looping forever when a workload fails to halt.
    """


class ConfigError(ReproError):
    """An LVP-unit or machine configuration is invalid."""


class TraceError(ReproError):
    """A trace is malformed or inconsistent with what a consumer expects."""
