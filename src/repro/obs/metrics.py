"""Per-run metrics: deterministic counters, phase spans, persistence.

The observability layer has one hard invariant, proven by the
differential suite in ``tests/harness/test_obs.py``:

**Counters are deterministic.**  A counter is a per-benchmark integer
derived purely from the computation's *results* (a trace's opcode mix,
an LVP unit's hit/miss totals, a timing model's cycle count), so a
serial run and a ``--jobs 4`` run of the same suite produce identical
counter values.  Anything wall-clock-shaped -- spans, per-process
cache statistics -- lives in separate sections (``spans``, ``phases``,
``run``) that carry no determinism guarantee.

**Overhead is near zero when disabled.**  A disabled session carries
``metrics=None`` and every instrumentation point is a single ``is not
None`` test; no registry, no clock reads, no dictionaries.  When
enabled, counters are recorded once per completed stage (a handful of
dict stores over numbers the stage already computed) and each stage
gets one pair of clock reads for its span.

The registry is process-local.  Worker processes accumulate into their
own registry and ship a :meth:`MetricsRegistry.fragment` home inside
the shard payload; the parallel engine merges fragments ordered by
benchmark name, so the merged registry is identical however the shards
were scheduled.  See ``docs/observability.md`` for the full model and
the counter catalogue.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

#: Environment knob: truthy values enable metrics on sessions that do
#: not pass an explicit ``metrics=`` argument; ``0``/``false`` disable
#: them even where the CLI would default them on.
METRICS_ENV = "REPRO_METRICS"

#: The metrics document written into each run directory.
METRICS_FILENAME = "metrics.json"

#: Document format identifier (bump on incompatible layout changes).
SCHEMA_ID = "repro.obs/v1"

#: Scope key used for run-level (no-benchmark) phases in the document.
RUN_SCOPE = "(run)"

_FALSY = frozenset({"0", "false", "no", "off"})


def metrics_enabled_from_env(default: bool = False) -> bool:
    """Whether ``REPRO_METRICS`` asks for metrics (unset = *default*)."""
    raw = os.environ.get(METRICS_ENV)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in _FALSY


@dataclass(frozen=True)
class Span:
    """One traced phase execution: a start/end pair with provenance.

    ``benchmark`` is None for run-level phases (exhibit rendering);
    ``phase`` is the pipeline phase (``trace``/``annotate``/``model``/
    ``report``); ``label`` identifies the specific unit of work (e.g.
    ``annotate/grep/ppc/Simple`` or an exhibit id).  Times are
    ``time.time()`` epoch seconds so spans from different worker
    processes share one clock.
    """

    benchmark: Optional[str]
    phase: str
    label: str
    start: float
    end: float
    pid: int

    @property
    def seconds(self) -> float:
        """The span's duration (clamped at zero)."""
        return max(0.0, self.end - self.start)


class MetricsRegistry:
    """Counters and spans for one process's share of a run.

    Counters live in two scopes: per-benchmark (deterministic, see the
    module docstring) and run-level (process-shaped things like trace
    cache hit rates).  All mutation methods are cheap dict operations;
    the registry does no I/O until :meth:`to_document`.
    """

    def __init__(self) -> None:
        #: benchmark -> counter name -> integer value.
        self._benchmarks: dict[str, dict[str, int]] = {}
        #: run-scope counter name -> numeric value.
        self._run: dict[str, float] = {}
        #: Every recorded span, in recording order.
        self.spans: list[Span] = []

    # -- counters ------------------------------------------------------------
    def inc(self, benchmark: str, name: str, value: int = 1) -> None:
        """Add *value* to one per-benchmark counter."""
        scope = self._benchmarks.setdefault(benchmark, {})
        scope[name] = scope.get(name, 0) + int(value)

    def add_many(self, benchmark: str, prefix: str,
                 counters: Mapping[str, int]) -> None:
        """Record a stage's counter dict under ``prefix + name``."""
        scope = self._benchmarks.setdefault(benchmark, {})
        for name, value in counters.items():
            key = prefix + name
            scope[key] = scope.get(key, 0) + int(value)

    def inc_run(self, name: str, value: float = 1) -> None:
        """Add *value* to one run-scope counter."""
        self._run[name] = self._run.get(name, 0) + value

    def add_run_many(self, prefix: str,
                     counters: Mapping[str, float]) -> None:
        """Record run-scope counters under ``prefix + name``."""
        for name, value in counters.items():
            self.inc_run(prefix + name, value)

    def benchmark_counters(self) -> dict[str, dict[str, int]]:
        """Deep copy of the per-benchmark counter scopes."""
        return {name: dict(scope)
                for name, scope in self._benchmarks.items()}

    def run_counters(self) -> dict[str, float]:
        """Copy of the run-scope counters."""
        return dict(self._run)

    # -- spans ---------------------------------------------------------------
    def record_span(self, span: Span) -> None:
        """Append one finished span."""
        self.spans.append(span)

    @contextlib.contextmanager
    def span(self, benchmark: Optional[str], phase: str,
             label: str) -> Iterator[None]:
        """Record a span around the enclosed block (even on failure:
        a failed stage's wall time is still wall time spent)."""
        start = time.time()
        try:
            yield
        finally:
            self.record_span(Span(benchmark=benchmark, phase=phase,
                                  label=label, start=start,
                                  end=time.time(), pid=os.getpid()))

    # -- merging -------------------------------------------------------------
    def fragment(self) -> dict:
        """This registry's content as a plain picklable dict (what a
        worker ships home inside its shard payload)."""
        return {
            "benchmarks": self.benchmark_counters(),
            "run": self.run_counters(),
            "spans": list(self.spans),
        }

    def merge_fragment(self, fragment: Mapping) -> None:
        """Fold one :meth:`fragment` into this registry (summing
        counters; order-independent, so the engine's by-name merge
        yields the same totals as any other order)."""
        for benchmark, scope in fragment.get("benchmarks", {}).items():
            self.add_many(benchmark, "", scope)
        self.add_run_many("", fragment.get("run", {}))
        self.spans.extend(fragment.get("spans", ()))

    # -- persistence ---------------------------------------------------------
    def phase_seconds(self) -> dict[str, dict[str, float]]:
        """Summed span seconds per benchmark per phase (run-level
        spans aggregate under :data:`RUN_SCOPE`)."""
        phases: dict[str, dict[str, float]] = {}
        for span in self.spans:
            scope = phases.setdefault(span.benchmark or RUN_SCOPE, {})
            scope[span.phase] = scope.get(span.phase, 0.0) + span.seconds
        return phases

    def to_document(self, run_id: str = "",
                    manifest: Optional[Mapping] = None) -> dict:
        """The ``metrics.json`` document for this registry."""
        from repro import __version__
        context = {}
        if manifest:
            context = {key: manifest.get(key)
                       for key in ("scale", "benchmarks", "exhibits",
                                   "jobs")
                       if key in manifest}
        return {
            "schema": SCHEMA_ID,
            "run_id": run_id,
            "version": __version__,
            "context": context,
            "benchmarks": {
                name: dict(sorted(scope.items()))
                for name, scope in sorted(self._benchmarks.items())
            },
            "run": dict(sorted(self._run.items())),
            "phases": {
                name: dict(sorted(scope.items()))
                for name, scope in sorted(self.phase_seconds().items())
            },
            "spans": [
                {"benchmark": span.benchmark, "phase": span.phase,
                 "label": span.label, "start": span.start,
                 "end": span.end, "pid": span.pid}
                for span in self.spans
            ],
        }


def write_metrics(directory, document: Mapping) -> pathlib.Path:
    """Atomically write *document* as ``metrics.json`` in *directory*."""
    directory = pathlib.Path(directory)
    path = directory / METRICS_FILENAME
    temporary = directory / (METRICS_FILENAME + ".tmp")
    temporary.write_text(json.dumps(document, indent=2, sort_keys=True))
    temporary.replace(path)
    return path


def load_metrics(directory) -> dict:
    """Read a run directory's ``metrics.json`` (raises OSError when
    the run was recorded without metrics, ValueError on damage)."""
    path = pathlib.Path(directory) / METRICS_FILENAME
    return json.loads(path.read_text())
