"""repro.obs: per-run metrics, phase tracing, and hot-loop counters.

See :mod:`repro.obs.metrics` for the model and determinism contract,
:mod:`repro.obs.schema` for ``metrics.json`` validation, and
``docs/observability.md`` for the counter catalogue.
"""

from repro.obs.metrics import (
    METRICS_ENV,
    METRICS_FILENAME,
    MetricsRegistry,
    RUN_SCOPE,
    SCHEMA_ID,
    Span,
    load_metrics,
    metrics_enabled_from_env,
    write_metrics,
)
from repro.obs.render import render_stats
from repro.obs.schema import validate_metrics

__all__ = [
    "METRICS_ENV", "METRICS_FILENAME", "MetricsRegistry", "RUN_SCOPE",
    "SCHEMA_ID", "Span", "load_metrics", "metrics_enabled_from_env",
    "render_stats", "validate_metrics", "write_metrics",
]
