"""Rendering for ``repro stats``: per-benchmark, per-phase tables.

Everything renders from a ``metrics.json`` document alone (no session,
no re-simulation), so ``repro stats`` on a finished run directory is
instant and works on artifacts copied off another machine.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.report import TextTable
from repro.obs.metrics import RUN_SCOPE

#: Canonical phase order for the per-benchmark table.
PHASE_ORDER = ("trace", "annotate", "model", "report")

#: Marker appended to each benchmark's slowest phase cell.
SLOWEST_MARK = " *"


def _ordered_phases(phases: Mapping[str, Mapping[str, float]]) -> list[str]:
    """Observed phase names: canonical ones first, extras sorted."""
    seen: set[str] = set()
    for scope in phases.values():
        seen.update(scope)
    ordered = [name for name in PHASE_ORDER if name in seen]
    ordered.extend(sorted(seen - set(PHASE_ORDER)))
    return ordered


def render_phase_table(document: Mapping) -> str:
    """Per-benchmark phase seconds, slowest phase highlighted."""
    phases = document.get("phases", {})
    benchmarks = [name for name in phases if name != RUN_SCOPE]
    columns = [name for name in _ordered_phases(phases)
               if name != "report"]
    if not benchmarks or not columns:
        return "no phase spans recorded"
    table = TextTable(
        ["benchmark"] + columns + ["total"],
        title="Phase seconds per benchmark (slowest marked *)",
    )
    totals = {name: 0.0 for name in columns}
    for benchmark in sorted(benchmarks):
        scope = phases[benchmark]
        values = {name: float(scope.get(name, 0.0)) for name in columns}
        slowest = max(values, key=values.get) if any(values.values()) \
            else None
        row = [benchmark]
        for name in columns:
            cell = f"{values[name]:.3f}"
            if name == slowest:
                cell += SLOWEST_MARK
            row.append(cell)
            totals[name] += values[name]
        row.append(f"{sum(values.values()):.3f}")
        table.add_row(row)
    table.add_separator()
    table.add_row(["ALL"] + [f"{totals[name]:.3f}" for name in columns]
                  + [f"{sum(totals.values()):.3f}"])
    return table.render()


def _digest_counters(scope: Mapping[str, int]) -> dict[str, int]:
    """The headline counters ``repro stats`` summarizes per benchmark."""
    def total(predicate) -> int:
        return sum(value for name, value in scope.items()
                   if predicate(name))

    return {
        "instrs (ppc)": scope.get("sim/ppc/instructions", 0),
        "instrs (alpha)": scope.get("sim/alpha/instructions", 0),
        "loads (ppc)": scope.get("sim/ppc/loads", 0),
        "lvp mispredicts": total(
            lambda n: n.startswith("lvp/") and n.endswith("/mispredicts")),
        "model cycles": total(
            lambda n: n.startswith("model/") and n.endswith("/cycles")),
    }


def render_counter_table(document: Mapping) -> str:
    """Headline per-benchmark counters (see ``--full`` for all)."""
    benchmarks = document.get("benchmarks", {})
    if not benchmarks:
        return "no counters recorded"
    names = sorted(benchmarks)
    headers = list(_digest_counters({}).keys())
    table = TextTable(["benchmark"] + headers,
                      title="Headline counters per benchmark")
    for name in names:
        digest = _digest_counters(benchmarks[name])
        table.add_row([name] + [f"{digest[h]:,}" for h in headers])
    return table.render()


def render_full_counters(document: Mapping) -> str:
    """Every recorded counter, one row per (benchmark, counter)."""
    benchmarks = document.get("benchmarks", {})
    table = TextTable(["benchmark", "counter", "value"],
                      title="All counters")
    for name in sorted(benchmarks):
        for counter in sorted(benchmarks[name]):
            table.add_row([name, counter, f"{benchmarks[name][counter]:,}"])
    return table.render()


def render_stats(document: Mapping, full: bool = False) -> str:
    """The complete ``repro stats`` report for one document."""
    context = document.get("context", {})
    suite = context.get("benchmarks") or sorted(
        document.get("benchmarks", {}))
    header = (f"run {document.get('run_id', '?')} -- "
              f"repro {document.get('version', '?')}, "
              f"scale {context.get('scale', '?')}, "
              f"{len(suite)} benchmark(s), "
              f"{len(document.get('spans', []))} span(s)")
    sections = [header, render_phase_table(document),
                render_counter_table(document)]
    report_seconds = document.get("phases", {}).get(
        RUN_SCOPE, {}).get("report")
    if report_seconds is not None:
        sections.append(f"report phase (exhibit rendering): "
                        f"{float(report_seconds):.3f}s")
    run = document.get("run", {})
    if run:
        lines = ["Run-scope counters (per-process, not deterministic):"]
        for name in sorted(run):
            value = run[name]
            rendered = f"{value:,}" if isinstance(value, int) \
                else f"{value:.3f}"
            lines.append(f"  {name:32s} {rendered}")
        sections.append("\n".join(lines))
    if full:
        sections.append(render_full_counters(document))
    return "\n\n".join(sections)
