"""Structural validation of ``metrics.json`` documents.

Hand-rolled (the container has no jsonschema) but strict: the CI
observability smoke job runs ``repro stats <id> --validate`` after
every small experiment, so a drifting writer fails the build rather
than producing documents ``repro stats`` can no longer read.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.metrics import SCHEMA_ID

_REQUIRED_KEYS = ("schema", "run_id", "version", "context",
                  "benchmarks", "run", "phases", "spans")
_SPAN_KEYS = ("benchmark", "phase", "label", "start", "end", "pid")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_metrics(document) -> list[str]:
    """Every schema violation in *document* (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(document, Mapping):
        return [f"document must be an object, got {type(document).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in document:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors

    if document["schema"] != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r}, "
                      f"got {document['schema']!r}")
    for key in ("run_id", "version"):
        if not isinstance(document[key], str):
            errors.append(f"{key!r} must be a string")

    benchmarks = document["benchmarks"]
    if not isinstance(benchmarks, Mapping):
        errors.append("'benchmarks' must be an object")
    else:
        for name, scope in benchmarks.items():
            if not isinstance(scope, Mapping):
                errors.append(f"benchmarks[{name!r}] must be an object")
                continue
            for counter, value in scope.items():
                if not isinstance(value, int) or isinstance(value, bool):
                    errors.append(
                        f"benchmarks[{name!r}][{counter!r}] must be an "
                        f"integer, got {value!r}")

    run = document["run"]
    if not isinstance(run, Mapping):
        errors.append("'run' must be an object")
    else:
        for counter, value in run.items():
            if not _is_number(value):
                errors.append(f"run[{counter!r}] must be a number, "
                              f"got {value!r}")

    phases = document["phases"]
    if not isinstance(phases, Mapping):
        errors.append("'phases' must be an object")
    else:
        for name, scope in phases.items():
            if not isinstance(scope, Mapping) or not all(
                    _is_number(v) and v >= 0 for v in scope.values()):
                errors.append(f"phases[{name!r}] must map phase names "
                              "to non-negative seconds")

    spans = document["spans"]
    if not isinstance(spans, list):
        errors.append("'spans' must be a list")
    else:
        for index, span in enumerate(spans):
            if not isinstance(span, Mapping):
                errors.append(f"spans[{index}] must be an object")
                continue
            missing = [key for key in _SPAN_KEYS if key not in span]
            if missing:
                errors.append(f"spans[{index}] missing keys {missing}")
                continue
            if span["benchmark"] is not None and \
                    not isinstance(span["benchmark"], str):
                errors.append(f"spans[{index}]['benchmark'] must be a "
                              "string or null")
            for key in ("phase", "label"):
                if not isinstance(span[key], str):
                    errors.append(f"spans[{index}][{key!r}] must be a string")
            if not (_is_number(span["start"]) and _is_number(span["end"])):
                errors.append(f"spans[{index}] start/end must be numbers")
            elif span["end"] < span["start"]:
                errors.append(f"spans[{index}] ends before it starts")
            if not isinstance(span["pid"], int) or isinstance(
                    span["pid"], bool):
                errors.append(f"spans[{index}]['pid'] must be an integer")
    return errors
