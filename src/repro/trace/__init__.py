"""Trace infrastructure: records, statistics, and LVP annotation."""

from repro.trace.annotate import NOT_A_LOAD, AnnotatedTrace, annotate_trace
from repro.trace.dump import dump_trace, format_record
from repro.trace.records import MemoryView, Trace, TraceColumns
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.validate import require_valid, validate_trace

__all__ = [
    "NOT_A_LOAD", "AnnotatedTrace", "annotate_trace",
    "MemoryView", "Trace", "TraceColumns",
    "TraceStats", "compute_stats",
    "require_valid", "validate_trace",
    "dump_trace", "format_record",
]
