"""Trace-level statistics (instruction mix, static/dynamic load counts)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.opcodes import OpClass
from repro.trace.records import Trace


@dataclass
class TraceStats:
    """Summary statistics of one trace (the analog of paper Table 1)."""

    name: str
    target: str
    instructions: int
    loads: int
    stores: int
    branches: int
    static_loads: int
    opclass_mix: dict[OpClass, int]

    @property
    def load_fraction(self) -> float:
        """Dynamic loads as a fraction of all instructions."""
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        """Dynamic stores as a fraction of all instructions."""
        return self.stores / self.instructions if self.instructions else 0.0


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*."""
    mix = trace.opclass_counts()
    load_pcs = trace.pc[trace.is_load]
    return TraceStats(
        name=trace.name,
        target=trace.target,
        instructions=trace.num_instructions,
        loads=trace.num_loads,
        stores=trace.num_stores,
        branches=mix.get(OpClass.BRANCH, 0),
        static_loads=int(np.unique(load_pcs).size),
        opclass_mix=mix,
    )
