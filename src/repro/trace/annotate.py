"""LVP annotation of traces (paper Section 5).

The paper's experimental framework feeds each trace through a model of
the LVP unit "which annotates each load in the trace with one of four
value prediction states: no prediction, incorrect prediction, correct
prediction, or constant load", and hands the annotated trace to the
cycle-accurate simulators.  This module is that middle phase.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import OpClass
from repro.lvp.config import LVPConfig
from repro.lvp.unit import LoadOutcome, LVPStats, LVPUnit
from repro.trace.records import Trace

#: Sentinel in the per-instruction outcome column for "not a load".
NOT_A_LOAD = 255

# Event kinds for the program-order replay.
_LOAD, _STORE, _BRANCH = 0, 1, 2


class AnnotatedTrace:
    """A trace plus per-load LVP prediction states.

    ``outcomes`` is a uint8 array parallel to the trace: load positions
    hold a :class:`LoadOutcome` value; everything else holds
    :data:`NOT_A_LOAD`.  When annotation ran with ``audit=True``,
    ``audit_log`` holds one ``(pc, predicted, actual, outcome)`` tuple
    per dynamic load (``predicted`` is None when the unit had no value
    to forward); otherwise it is None.
    """

    def __init__(self, trace: Trace, config: LVPConfig,
                 outcomes: np.ndarray, stats: LVPStats,
                 audit_log=None) -> None:
        self.trace = trace
        self.config = config
        self.outcomes = outcomes
        self.stats = stats
        self.audit_log = audit_log

    def outcome_counts(self) -> dict[LoadOutcome, int]:
        """Dynamic load counts per prediction state."""
        return dict(self.stats.outcomes)

    def __repr__(self) -> str:
        return (
            f"<AnnotatedTrace {self.trace.name!r} config={self.config.name} "
            f"loads={self.stats.loads}>"
        )


def annotate_trace(trace: Trace, config: LVPConfig, *,
                   audit: bool = False,
                   fault_hook=None) -> AnnotatedTrace:
    """Run an LVP unit over *trace* in program order; annotate each load.

    Units whose lookup index folds in branch history additionally
    consume the trace's conditional-branch outcomes, in program order
    interleaved with the memory operations.

    ``audit=True`` makes the unit record every forwarded prediction so
    callers (notably the fault-injection doctor) can prove the value
    comparator catches every wrong forward.  ``fault_hook``, if given,
    is called as ``fault_hook(unit, event_index)`` before each
    load/store/branch event -- the hook decides when (and whether) to
    corrupt the unit's tables mid-annotation.
    """
    unit = LVPUnit(config, audit=audit)
    outcomes = np.full(len(trace), NOT_A_LOAD, dtype=np.uint8)

    is_load = trace.is_load
    relevant = is_load | trace.is_store
    kinds = np.where(is_load, _LOAD, _STORE)
    if unit.needs_branch_stream:
        is_branch = trace.opclass == int(OpClass.BRANCH)
        relevant = relevant | is_branch
        kinds = np.where(is_branch, _BRANCH, kinds)

    positions = np.nonzero(relevant)[0]
    kind_list = kinds[positions].tolist()
    pcs = trace.pc[positions].tolist()
    addrs = trace.addr[positions].tolist()
    values = trace.value[positions].tolist()
    sizes = trace.size[positions].tolist()
    takens = trace.taken[positions].tolist()
    position_list = positions.tolist()

    process_load = unit.process_load
    process_store = unit.process_store
    process_branch = unit.process_branch
    for i, pos in enumerate(position_list):
        if fault_hook is not None:
            fault_hook(unit, i)
        kind = kind_list[i]
        if kind == _LOAD:
            outcomes[pos] = int(process_load(pcs[i], addrs[i], values[i]))
        elif kind == _STORE:
            process_store(addrs[i], sizes[i])
        else:
            process_branch(bool(takens[i]))

    return AnnotatedTrace(trace, config, outcomes, unit.stats,
                          audit_log=unit.audit_log)
