"""LVP annotation of traces (paper Section 5).

The paper's experimental framework feeds each trace through a model of
the LVP unit "which annotates each load in the trace with one of four
value prediction states: no prediction, incorrect prediction, correct
prediction, or constant load", and hands the annotated trace to the
cycle-accurate simulators.  This module is that middle phase.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from repro.errors import ConfigError
from repro.isa.opcodes import OpClass
from repro.lvp.config import LVPConfig
from repro.lvp.unit import LoadOutcome, LVPStats, LVPUnit
from repro.trace.kernels import (
    NOT_A_LOAD,
    LctContext,
    decode_events,
    run_stage_b,
    run_stage_c,
    stage_a_last_value,
)
from repro.trace.records import Trace

# Event kinds for the program-order replay.
_LOAD, _STORE, _BRANCH = 0, 1, 2

#: Recognised values of the ``kernel`` knob / ``REPRO_ANNOTATE_KERNEL``.
KERNELS = ("auto", "general", "mono", "vector")


def mono_eligible(config: LVPConfig, audit: bool = False,
                  fault_hook=None) -> bool:
    """Can the monomorphic kernel annotate under *config*?

    The fast kernel handles the common case only: the paper's
    PC-indexed, untagged history LVPT with no audit log, no fault hook,
    no profile filter, and no branch-history stream.  Everything else
    (Perfect oracle, stride, gshare, tagged ablation, auditing,
    mid-annotation fault injection) takes the general
    :class:`~repro.lvp.unit.LVPUnit` path.
    """
    return (not audit and fault_hook is None and not config.perfect
            and config.predictor == "history"
            and config.index_mode == "pc"
            and not config.lvpt_tagged
            and config.profile_filter is None)


def vector_eligible(config: LVPConfig, audit: bool = False,
                    fault_hook=None) -> bool:
    """Can the vectorized kernel annotate under *config*?

    The vector tier covers the monomorphic kernel's domain further
    restricted to history depth 1 -- the shape whose stage-A pass
    (last-value prediction) is fully vectorizable via the
    stable-argsort groupby in :mod:`repro.trace.kernels`.  Deeper
    histories keep an inherently sequential MRU list per LVPT entry
    and stay on the ``mono`` tier.
    """
    return (mono_eligible(config, audit, fault_hook)
            and config.history_depth == 1)


def resolve_kernel(kernel, config: LVPConfig, audit: bool,
                   fault_hook) -> str:
    """Resolve the kernel knob to a concrete kernel name.

    ``REPRO_ANNOTATE_KERNEL`` overrides the argument; ``"auto"`` (the
    default) picks the fastest eligible kernel
    (``vector`` > ``mono`` > ``general``).  Forcing ``"vector"`` or
    ``"mono"`` for an ineligible combination is a :class:`ConfigError`
    rather than a silent fallback.
    """
    env = os.environ.get("REPRO_ANNOTATE_KERNEL")
    if env:
        kernel = env
    if kernel is None:
        kernel = "auto"
    if kernel not in KERNELS:
        raise ConfigError(
            f"unknown annotation kernel {kernel!r} "
            f"(choose from {', '.join(KERNELS)})"
        )
    eligible = mono_eligible(config, audit, fault_hook)
    if kernel == "mono" and not eligible:
        raise ConfigError(
            f"kernel 'mono' cannot annotate config {config.name!r} with "
            "audit/fault-hook/perfect/stride/gshare/tagged/filter features "
            "requested; use 'auto' or 'general'"
        )
    if kernel == "vector" and not vector_eligible(config, audit, fault_hook):
        raise ConfigError(
            f"kernel 'vector' cannot annotate config {config.name!r}: it "
            "requires the monomorphic kernel's domain at history depth 1; "
            "use 'auto', 'mono', or 'general'"
        )
    if kernel == "auto":
        if vector_eligible(config, audit, fault_hook):
            return "vector"
        return "mono" if eligible else "general"
    return kernel


class AnnotatedTrace:
    """A trace plus per-load LVP prediction states.

    ``outcomes`` is a uint8 array parallel to the trace: load positions
    hold a :class:`LoadOutcome` value; everything else holds
    :data:`NOT_A_LOAD`.  When annotation ran with ``audit=True``,
    ``audit_log`` holds one ``(pc, predicted, actual, outcome)`` tuple
    per dynamic load (``predicted`` is None when the unit had no value
    to forward); otherwise it is None.
    """

    def __init__(self, trace: Trace, config: LVPConfig,
                 outcomes: np.ndarray, stats: LVPStats,
                 audit_log=None) -> None:
        self.trace = trace
        self.config = config
        self.outcomes = outcomes
        self.stats = stats
        self.audit_log = audit_log

    def outcome_counts(self) -> dict[LoadOutcome, int]:
        """Dynamic load counts per prediction state."""
        return dict(self.stats.outcomes)

    def __repr__(self) -> str:
        return (
            f"<AnnotatedTrace {self.trace.name!r} config={self.config.name} "
            f"loads={self.stats.loads}>"
        )


def annotate_trace(trace: Trace, config: LVPConfig, *,
                   audit: bool = False,
                   fault_hook=None,
                   kernel: str | None = None) -> AnnotatedTrace:
    """Run an LVP unit over *trace* in program order; annotate each load.

    Units whose lookup index folds in branch history additionally
    consume the trace's conditional-branch outcomes, in program order
    interleaved with the memory operations.

    ``audit=True`` makes the unit record every forwarded prediction so
    callers (notably the fault-injection doctor) can prove the value
    comparator catches every wrong forward.  ``fault_hook``, if given,
    is called as ``fault_hook(unit, event_index)`` before each
    load/store/branch event -- the hook decides when (and whether) to
    corrupt the unit's tables mid-annotation.

    ``kernel`` selects the annotation implementation: ``"general"``
    replays through :class:`LVPUnit` method calls and supports every
    feature; ``"mono"`` is a monomorphic single-loop kernel with the
    LVPT/LCT/CVU fast paths inlined, bit-identical for the common case
    (see :func:`mono_eligible`); ``"vector"`` runs the shared staged
    kernels from :mod:`repro.trace.kernels` -- a fully vectorized
    last-value predictor pass, a flat LCT counter loop, and a CVU
    replay over only the constant-classified loads -- for depth-1
    configurations (see :func:`vector_eligible`); ``"auto"`` (default)
    picks the fastest eligible kernel.  ``REPRO_ANNOTATE_KERNEL``
    overrides.
    """
    resolved = resolve_kernel(kernel, config, audit, fault_hook)
    if resolved == "vector":
        outcomes, stats = _annotate_vector(trace, config)
        return AnnotatedTrace(trace, config, outcomes, stats,
                              audit_log=None)
    if resolved == "mono":
        outcomes = np.full(len(trace), NOT_A_LOAD, dtype=np.uint8)
        stats = _annotate_mono(trace, config, outcomes)
        return AnnotatedTrace(trace, config, outcomes, stats,
                              audit_log=None)

    unit = LVPUnit(config, audit=audit)
    outcomes = np.full(len(trace), NOT_A_LOAD, dtype=np.uint8)

    is_load = trace.is_load
    relevant = is_load | trace.is_store
    kinds = np.where(is_load, _LOAD, _STORE)
    if unit.needs_branch_stream:
        is_branch = trace.opclass == int(OpClass.BRANCH)
        relevant = relevant | is_branch
        kinds = np.where(is_branch, _BRANCH, kinds)

    positions = np.nonzero(relevant)[0]
    kind_list = kinds[positions].tolist()
    pcs = trace.pc[positions].tolist()
    addrs = trace.addr[positions].tolist()
    values = trace.value[positions].tolist()
    sizes = trace.size[positions].tolist()
    takens = trace.taken[positions].tolist()
    position_list = positions.tolist()

    process_load = unit.process_load
    process_store = unit.process_store
    process_branch = unit.process_branch
    for i, pos in enumerate(position_list):
        if fault_hook is not None:
            fault_hook(unit, i)
        kind = kind_list[i]
        if kind == _LOAD:
            outcomes[pos] = int(process_load(pcs[i], addrs[i], values[i]))
        elif kind == _STORE:
            process_store(addrs[i], sizes[i])
        else:
            process_branch(bool(takens[i]))

    return AnnotatedTrace(trace, config, outcomes, unit.stats,
                          audit_log=unit.audit_log)


def _annotate_vector(trace: Trace,
                     config: LVPConfig) -> tuple[np.ndarray, LVPStats]:
    """Vectorized annotation via the shared staged kernels.

    Stage A is the fully vectorized depth-1 last-value pass (stable
    argsort groupby -- no per-load Python loop), stage B evolves the
    LCT saturating counters over the hit stream, and stage C replays
    the CVU over only the constant-classified loads.  The composition
    is bit-identical to the mono and general kernels on the
    :func:`vector_eligible` domain; ``tests/trace/test_vector.py``
    enforces it differentially.
    """
    events = decode_events(trace, branches=False)
    hits, idxs = stage_a_last_value(events, config.lvpt_entries)
    hit_list = hits.tolist()
    classes = run_stage_b(events, hit_list, config.lct_entries,
                          config.lct_bits, hits_np=hits)
    context = LctContext(hits, classes)
    return run_stage_c(events, hits, hit_list, idxs, context, config)


def _annotate_mono(trace: Trace, config: LVPConfig,
                   outcomes: np.ndarray) -> LVPStats:
    """Monomorphic annotation kernel for the common configuration.

    One loop over the trace's loads and stores with the LVPT history
    lookup, LCT saturating counters, and CVU CAM inlined as plain list
    and dict operations -- no per-event method dispatch, no audit
    bookkeeping, no branch stream.  Every state transition mirrors
    :meth:`LVPUnit.process_load` / :meth:`LVPUnit.process_store`
    exactly; the differential suite in ``tests/trace`` holds this to
    bit-identical outcomes and statistics against the general path.
    """
    is_load = trace.is_load
    relevant = is_load | trace.is_store
    positions = np.nonzero(relevant)[0]
    kind_list = np.where(is_load, _LOAD, _STORE)[positions].tolist()
    pcs = trace.pc[positions].tolist()
    addrs = trace.addr[positions].tolist()
    values = trace.value[positions].tolist()
    sizes = trace.size[positions].tolist()

    # LVPT: direct-mapped, untagged, MRU-first value histories.
    lvpt_mask = config.lvpt_entries - 1
    lvpt = [[] for _ in range(config.lvpt_entries)]
    depth = config.history_depth
    deep = depth > 1
    sel_perfect = config.selection == "perfect"
    # LCT: saturating counters.
    lct_mask = config.lct_entries - 1
    lct_max = (1 << config.lct_bits) - 1
    lct_predict = lct_max - 1
    one_bit = config.lct_bits == 1
    lct = [0] * config.lct_entries
    # CVU: LRU CAM of (word address, lvpt index) + per-word index sets.
    cvu_entries = config.cvu_entries
    cam: OrderedDict = OrderedDict()
    by_addr: dict[int, set] = {}
    cam_move = cam.move_to_end
    cam_pop_lru = cam.popitem

    loads = stores = 0
    n_nopred = n_incorrect = n_correct = n_constant = 0
    pp = pnp = up = unp = 0
    cvu_ins = cvu_sinv = cvu_dem = cvu_stale = 0
    load_outcomes: list[int] = []
    emit = load_outcomes.append

    for kind, pc, addr, value, size in zip(kind_list, pcs, addrs,
                                           values, sizes):
        if kind == _LOAD:
            loads += 1
            idx = (pc >> 2) & lvpt_mask
            hist = lvpt[idx]
            if hist:
                would_hit = (value in hist) if sel_perfect \
                    else hist[0] == value
            else:
                would_hit = False
            lidx = (pc >> 2) & lct_mask
            cnt = lct[lidx]

            if one_bit:
                constant = cnt != 0
                predict = False
            else:
                constant = cnt == lct_max
                predict = cnt == lct_predict

            if constant:
                word = addr & ~7
                key = (word, idx)
                if key in cam:
                    if would_hit:
                        cam_move(key)
                        emit(3)
                        n_constant += 1
                    else:
                        # Stale CVU hit: LVPT value was replaced while
                        # the CAM entry stayed valid; drop the entry.
                        cvu_stale += 1
                        del cam[key]
                        indices = by_addr.get(word)
                        if indices is not None:
                            indices.discard(idx)
                            if not indices:
                                del by_addr[word]
                        emit(1)
                        n_incorrect += 1
                else:
                    cvu_dem += 1
                    # A zero-entry CVU refuses the insert; only an
                    # actual placement counts as an insertion (mirrors
                    # CVU.insert returning False).
                    if cvu_entries:
                        if len(cam) >= cvu_entries:
                            vword, vidx = cam_pop_lru(last=False)[0]
                            victims = by_addr.get(vword)
                            if victims is not None:
                                victims.discard(vidx)
                                if not victims:
                                    del by_addr[vword]
                        cam[key] = None
                        holders = by_addr.get(word)
                        if holders is None:
                            by_addr[word] = {idx}
                        else:
                            holders.add(idx)
                        cvu_ins += 1
                    if would_hit:
                        emit(2)
                        n_correct += 1
                    else:
                        emit(1)
                        n_incorrect += 1
                if would_hit:
                    pp += 1
                else:
                    up += 1
            elif predict:
                if would_hit:
                    emit(2)
                    n_correct += 1
                    pp += 1
                else:
                    emit(1)
                    n_incorrect += 1
                    up += 1
            else:
                emit(0)
                n_nopred += 1
                if would_hit:
                    pnp += 1
                else:
                    unp += 1

            # LCT training (saturating +/- 1 on ground truth).
            if would_hit:
                if cnt < lct_max:
                    lct[lidx] = cnt + 1
            elif cnt > 0:
                lct[lidx] = cnt - 1
            # LVPT training (MRU promotion, bounded history).
            if deep:
                if not hist or hist[0] != value:
                    try:
                        hist.remove(value)
                    except ValueError:
                        pass
                    hist.insert(0, value)
                    if len(hist) > depth:
                        hist.pop()
            elif hist:
                if hist[0] != value:
                    hist[0] = value
            else:
                hist.append(value)
        else:
            stores += 1
            first = addr & ~7
            last = (addr + (size if size > 0 else 1) - 1) & ~7
            if first == last:
                indices = by_addr.pop(first, None)
                if indices:
                    for li in indices:
                        cam.pop((first, li), None)
                    cvu_sinv += len(indices)
            else:
                for word in range(first, last + 8, 8):
                    indices = by_addr.pop(word, None)
                    if indices:
                        for li in indices:
                            cam.pop((word, li), None)
                        cvu_sinv += len(indices)

    if load_outcomes:
        outcomes[np.nonzero(is_load)[0]] = np.array(load_outcomes,
                                                    dtype=np.uint8)
    return LVPStats(
        loads=loads, stores=stores,
        outcomes={
            LoadOutcome.NO_PREDICTION: n_nopred,
            LoadOutcome.INCORRECT: n_incorrect,
            LoadOutcome.CORRECT: n_correct,
            LoadOutcome.CONSTANT: n_constant,
        },
        predictable_predicted=pp,
        predictable_not_predicted=pnp,
        unpredictable_predicted=up,
        unpredictable_not_predicted=unp,
        cvu_insertions=cvu_ins,
        cvu_store_invalidations=cvu_sinv,
        cvu_demotions=cvu_dem,
        cvu_stale_hits=cvu_stale,
    )
