"""Column-oriented trace representation.

A :class:`Trace` records every dynamic instruction a workload executed:
its PC, opcode/op-class, register operands, and -- for memory operations
-- the effective address, the 64-bit value transferred, its
:class:`~repro.isa.opcodes.ValueKind`, and the access size.  Traces are
stored as parallel numpy arrays (column-oriented) because the analyses
(value locality, LVP annotation) vectorize over millions of records and
per-record Python objects would dominate both memory and time.

This mirrors the paper's methodology: their TRIP6000/ATOM tools captured
"all instruction, value and address references made by the CPU while in
user state" and fed them to downstream simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import TraceError
from repro.isa.opcodes import OpClass

#: Column names and dtypes, in storage order.
TRACE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("pc", "u8"),  # instruction address
    ("opcode", "u2"),  # Opcode enum value
    ("opclass", "u1"),  # OpClass enum value
    ("dst", "i2"),  # destination register id (NO_REG if none)
    ("src1", "i2"),  # first source register id
    ("src2", "i2"),  # second source register id
    ("addr", "u8"),  # effective address (loads/stores), else 0
    ("value", "u8"),  # value loaded/stored (loads/stores), else 0
    ("kind", "u1"),  # ValueKind of the value (loads/stores), else 0
    ("size", "u1"),  # access size in bytes (loads/stores), else 0
    ("taken", "u1"),  # conditional branches: 1 if taken
)

_DTYPES = {name: np.dtype("<" + code) for name, code in TRACE_COLUMNS}


@dataclass
class TraceColumns:
    """Mutable append-only buffers used while a trace is being captured."""

    pc: list = field(default_factory=list)
    opcode: list = field(default_factory=list)
    opclass: list = field(default_factory=list)
    dst: list = field(default_factory=list)
    src1: list = field(default_factory=list)
    src2: list = field(default_factory=list)
    addr: list = field(default_factory=list)
    value: list = field(default_factory=list)
    kind: list = field(default_factory=list)
    size: list = field(default_factory=list)
    taken: list = field(default_factory=list)


class Trace:
    """An immutable dynamic instruction trace.

    Attributes of note:

    ``name`` / ``target``
        workload name and codegen target that produced the trace.
    ``pc``, ``opcode``, ... ``taken``
        the numpy columns listed in :data:`TRACE_COLUMNS`.
    """

    def __init__(self, columns: dict[str, np.ndarray], name: str = "",
                 target: str = "") -> None:
        lengths = {key: len(col) for key, col in columns.items()}
        if set(lengths) != set(_DTYPES):
            missing = set(_DTYPES) - set(lengths)
            extra = set(lengths) - set(_DTYPES)
            raise TraceError(
                f"bad trace columns (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        if len(set(lengths.values())) > 1:
            raise TraceError(f"ragged trace columns: {lengths}")
        for key, col in columns.items():
            setattr(self, key, np.asarray(col, dtype=_DTYPES[key]))
        self.name = name
        self.target = target

    # -- construction --------------------------------------------------------
    @classmethod
    def from_columns(cls, cols: TraceColumns, name: str = "",
                     target: str = "") -> "Trace":
        """Freeze append buffers into an immutable trace."""
        arrays = {
            key: np.array(getattr(cols, key), dtype=_DTYPES[key])
            for key, _ in TRACE_COLUMNS
        }
        return cls(arrays, name=name, target=target)

    # -- basic shape ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pc)

    @property
    def num_instructions(self) -> int:
        """Number of dynamic instructions in the trace."""
        return len(self.pc)

    # -- masks and views -------------------------------------------------------
    @property
    def is_load(self) -> np.ndarray:
        """Boolean mask of load instructions."""
        return self.opclass == int(OpClass.LOAD)

    @property
    def is_store(self) -> np.ndarray:
        """Boolean mask of store instructions."""
        return self.opclass == int(OpClass.STORE)

    @property
    def num_loads(self) -> int:
        """Number of dynamic loads."""
        return int(self.is_load.sum())

    @property
    def num_stores(self) -> int:
        """Number of dynamic stores."""
        return int(self.is_store.sum())

    def loads(self) -> "MemoryView":
        """View of just the load records (positions preserved)."""
        return MemoryView(self, self.is_load)

    def stores(self) -> "MemoryView":
        """View of just the store records (positions preserved)."""
        return MemoryView(self, self.is_store)

    def materialize(self) -> "Trace":
        """A deep copy with fresh, private, writable columns.

        Traces loaded from the v2 trace cache carry read-only columns
        that alias memory-mapped file pages shared across processes;
        anything that needs to mutate records in place (fault
        injectors, ad-hoc experiments) must materialize first rather
        than corrupt the shared mapping.
        """
        return Trace(
            {key: np.array(getattr(self, key), dtype=_DTYPES[key],
                           copy=True)
             for key, _ in TRACE_COLUMNS},
            name=self.name, target=self.target,
        )

    def opclass_counts(self) -> dict[OpClass, int]:
        """Dynamic instruction counts per op class."""
        values, counts = np.unique(self.opclass, return_counts=True)
        return {OpClass(int(v)): int(c) for v, c in zip(values, counts)}

    def __repr__(self) -> str:
        return (
            f"<Trace {self.name!r} target={self.target!r} "
            f"{self.num_instructions} instrs, {self.num_loads} loads>"
        )


class MemoryView:
    """Filtered view of a trace's memory operations.

    ``index`` holds the positions of the selected records in the parent
    trace, so consumers that interleave loads and stores (the LVP unit,
    the CVU) can process them in program order.
    """

    def __init__(self, trace: Trace, mask: np.ndarray) -> None:
        self.index = np.nonzero(mask)[0]
        self.pc = trace.pc[self.index]
        self.addr = trace.addr[self.index]
        self.value = trace.value[self.index]
        self.kind = trace.kind[self.index]
        self.size = trace.size[self.index]

    def __len__(self) -> int:
        return len(self.index)

    def __iter__(self) -> Iterator[tuple[int, int, int, int, int]]:
        """Yield (position, pc, addr, value, size) tuples in program order."""
        for i in range(len(self.index)):
            yield (
                int(self.index[i]), int(self.pc[i]), int(self.addr[i]),
                int(self.value[i]), int(self.size[i]),
            )
