"""Shared annotation kernels: the factored LVP data flow.

The sweep engine (PR 8) proved that one trace decode plus three
factored stages -- a value-predictor pass, an LCT classifier pass, and
a CVU replay over only the constant-classified loads -- reproduces
``annotate_trace`` bit-for-bit while sharing almost all of the work.
This module is that machinery hoisted out of ``repro.harness.sweep``
so the standard annotation path can use it too: the ``vector`` kernel
in :mod:`repro.trace.annotate` runs exactly one configuration through
the same stages, and the sweep engine amortizes them across a grid.

Layering: this module sits *below* both ``repro.trace.annotate`` and
``repro.harness.sweep`` and must import from neither (it is the reason
:data:`NOT_A_LOAD` lives here and is re-exported upward).

Every fast path below must stay bit-identical to the corresponding
predictor/LCT/CVU class; the differential suites in
``tests/harness/test_sweep.py`` and ``tests/trace/test_vector.py``
enforce it against the general :class:`~repro.lvp.unit.LVPUnit` path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.lvp.config import LVPConfig
from repro.lvp.fcm import _HASH_MULT
from repro.lvp.lct import LoadClass
from repro.lvp.unit import LoadOutcome, LVPStats, build_predictor
from repro.trace.records import Trace

#: Sentinel in the per-instruction outcome column for "not a load".
NOT_A_LOAD = 255

_U64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# Shared trace decode.
# ---------------------------------------------------------------------------
@dataclass
class SweepEvents:
    """One trace, decoded once, in the shapes the three stages consume."""

    n_records: int
    #: Per dynamic load, in program order (Python lists for the stage
    #: loops, numpy for the vectorized paths).
    load_pcs: list
    load_addrs: list
    load_values: list
    load_pcs_np: np.ndarray
    load_values_np: np.ndarray
    #: Trace positions of the loads (for outcome-array reconstruction).
    load_positions: np.ndarray
    #: Memory events (loads + stores) in program order.
    mem_is_store: np.ndarray  # bool
    mem_load_ord: np.ndarray  # int64; -1 for stores
    mem_addrs: np.ndarray  # effective addresses (stores need them to snoop)
    mem_sizes: np.ndarray  # access sizes (stores need them to snoop)
    #: Loads + branches in program order (gshare's GHR view): kind 0 =
    #: load, 1 = branch.  None unless decoded with ``branches=True``.
    lb_kinds: Optional[list] = None
    lb_pcs: Optional[list] = None
    lb_values: Optional[list] = None
    lb_takens: Optional[list] = None

    @property
    def n_loads(self) -> int:
        return len(self.load_pcs)

    @property
    def n_stores(self) -> int:
        return int(np.count_nonzero(self.mem_is_store))


def decode_events(trace: Trace, branches: bool = True) -> SweepEvents:
    """Decode *trace* into the event streams every stage shares.

    This is the cost the sweep amortizes: numpy mask + fancy-index +
    ``tolist`` once, instead of once per configuration.  *branches*
    may be False when no gshare configuration is in the grid.
    """
    from repro.isa.opcodes import OpClass

    is_load = trace.is_load
    is_store = trace.is_store
    mem_mask = is_load | is_store
    mem_positions = np.nonzero(mem_mask)[0]
    mem_is_store = is_store[mem_positions]
    mem_is_load = ~mem_is_store
    mem_load_ord = np.cumsum(mem_is_load) - 1
    mem_load_ord[mem_is_store] = -1

    load_positions = mem_positions[mem_is_load]
    load_pcs_np = trace.pc[load_positions]
    load_values_np = trace.value[load_positions]

    events = SweepEvents(
        n_records=len(trace),
        load_pcs=load_pcs_np.tolist(),
        load_addrs=trace.addr[load_positions].tolist(),
        load_values=load_values_np.tolist(),
        load_pcs_np=load_pcs_np,
        load_values_np=load_values_np,
        load_positions=load_positions,
        mem_is_store=mem_is_store,
        mem_load_ord=mem_load_ord,
        mem_addrs=trace.addr[mem_positions],
        mem_sizes=trace.size[mem_positions],
    )
    if branches:
        is_branch = trace.opclass == int(OpClass.BRANCH)
        lb_mask = is_load | is_branch
        lb_positions = np.nonzero(lb_mask)[0]
        events.lb_kinds = np.where(
            is_branch[lb_positions], 1, 0).tolist()
        events.lb_pcs = trace.pc[lb_positions].tolist()
        events.lb_values = trace.value[lb_positions].tolist()
        events.lb_takens = trace.taken[lb_positions].tolist()
    return events


# ---------------------------------------------------------------------------
# Stage A: the value-predictor pass.
# ---------------------------------------------------------------------------
def pc_indices(pcs_np: np.ndarray, entries: int) -> np.ndarray:
    """Direct-mapped table indices for an array of instruction PCs."""
    return (pcs_np.astype(np.int64) >> 2) & (entries - 1)


def stage_a_last_value(events: SweepEvents,
                       entries: int) -> tuple[np.ndarray, list]:
    """Vectorized depth-1 last-value prediction (history depth 1 and
    last-N depth 1 collapse to it): a load hits iff the previous load
    mapping to the same table index carried the same value."""
    idx = pc_indices(events.load_pcs_np, entries)
    n = len(idx)
    hits = np.zeros(n, dtype=bool)
    if n:
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        svals = events.load_values_np[order]
        same = np.zeros(n, dtype=bool)
        same[1:] = (sidx[1:] == sidx[:-1]) & (svals[1:] == svals[:-1])
        hits[order] = same
    return hits, idx.tolist()


def stage_a_history_pc(events: SweepEvents,
                       config: LVPConfig) -> tuple[np.ndarray, list]:
    """Inline pass for the paper's PC-indexed untagged deep-history
    LVPT (mirrors the monomorphic kernel's LVPT half exactly)."""
    mask = config.lvpt_entries - 1
    table: list[list[int]] = [[] for _ in range(config.lvpt_entries)]
    depth = config.history_depth
    sel_perfect = config.selection == "perfect"
    hits = np.empty(events.n_loads, dtype=bool)
    idxs: list[int] = []
    append_idx = idxs.append
    for i, (pc, value) in enumerate(zip(events.load_pcs,
                                        events.load_values)):
        idx = (pc >> 2) & mask
        append_idx(idx)
        hist = table[idx]
        if hist:
            hits[i] = (value in hist) if sel_perfect \
                else hist[0] == value
            if hist[0] != value:
                try:
                    hist.remove(value)
                except ValueError:
                    pass
                hist.insert(0, value)
                if len(hist) > depth:
                    hist.pop()
        else:
            hits[i] = False
            hist.append(value)
    return hits, idxs


def stage_a_stride(events: SweepEvents,
                   entries: int) -> tuple[np.ndarray, list]:
    """Inline :class:`~repro.lvp.stride.StridePredictor` pass."""
    mask = entries - 1
    last: list = [None] * entries
    stride = [0] * entries
    conf = [0] * entries
    hits = np.empty(events.n_loads, dtype=bool)
    idxs: list[int] = []
    append_idx = idxs.append
    for i, (pc, value) in enumerate(zip(events.load_pcs,
                                        events.load_values)):
        idx = (pc >> 2) & mask
        append_idx(idx)
        prev = last[idx]
        if prev is None:
            hits[i] = False
            last[idx] = value
            continue
        if conf[idx] >= 2:
            hits[i] = ((prev + stride[idx]) & _U64) == value
        else:
            hits[i] = prev == value
        delta = (value - prev) & _U64
        if delta == stride[idx]:
            if conf[idx] < 3:
                conf[idx] += 1
        else:
            stride[idx] = delta
            conf[idx] = 1 if delta else 0
        last[idx] = value
    return hits, idxs


def stage_a_fcm(events: SweepEvents, entries: int,
                order: int) -> tuple[np.ndarray, list]:
    """Inline :class:`~repro.lvp.fcm.FCMPredictor` pass.

    The unit hashes the context twice per load (once predicting, once
    training); here prediction and the VPT write share one hash, which
    is legal because nothing shifts the context in between.
    """
    mask = entries - 1
    vht: list[list[int]] = [[] for _ in range(entries)]
    vpt: list = [None] * entries
    hits = np.empty(events.n_loads, dtype=bool)
    idxs: list[int] = []
    append_idx = idxs.append
    for i, (pc, value) in enumerate(zip(events.load_pcs,
                                        events.load_values)):
        idx = (pc >> 2) & mask
        append_idx(idx)
        ctx = vht[idx]
        if len(ctx) >= order:
            folded = 0
            for v in ctx:
                folded = ((folded * _HASH_MULT) + v) & _U64
            slot = (folded ^ (folded >> 32)) & mask
            hits[i] = vpt[slot] == value
            vpt[slot] = value
            ctx.append(value)
            ctx.pop(0)
        else:
            hits[i] = False
            ctx.append(value)
    return hits, idxs


def stage_a_lastn(events: SweepEvents, entries: int,
                  depth: int) -> tuple[np.ndarray, list]:
    """Inline :class:`~repro.lvp.lastn.LastNPredictor` pass."""
    mask = entries - 1
    buffers: list[list[int]] = [[] for _ in range(entries)]
    hits = np.empty(events.n_loads, dtype=bool)
    idxs: list[int] = []
    append_idx = idxs.append
    for i, (pc, value) in enumerate(zip(events.load_pcs,
                                        events.load_values)):
        idx = (pc >> 2) & mask
        append_idx(idx)
        buffer = buffers[idx]
        if buffer:
            counts: dict[int, int] = {}
            for v in buffer:
                counts[v] = counts.get(v, 0) + 1
            best = None
            best_count = 0
            for v in reversed(buffer):
                count = counts[v]
                if count > best_count:
                    best = v
                    best_count = count
            hits[i] = best == value
        else:
            hits[i] = False
        buffer.append(value)
        if len(buffer) > depth:
            buffer.pop(0)
    return hits, idxs


def stage_a_hybrid(events: SweepEvents,
                   entries: int) -> tuple[np.ndarray, list]:
    """Inline :class:`~repro.lvp.hybrid.HybridPredictor` pass."""
    mask = entries - 1
    last: list = [None] * entries
    stride = [0] * entries
    conf = [0] * entries
    chooser = [1] * entries
    hits = np.empty(events.n_loads, dtype=bool)
    idxs: list[int] = []
    append_idx = idxs.append
    for i, (pc, value) in enumerate(zip(events.load_pcs,
                                        events.load_values)):
        idx = (pc >> 2) & mask
        append_idx(idx)
        prev = last[idx]
        if prev is None:
            hits[i] = False
            last[idx] = value
            continue
        if conf[idx] >= 2:
            value_pred = prev
            stride_pred = (prev + stride[idx]) & _U64
        else:
            value_pred = stride_pred = prev
        hits[i] = (stride_pred if chooser[idx] >= 2
                   else value_pred) == value
        value_ok = value_pred == value
        stride_ok = stride_pred == value
        if stride_ok and not value_ok:
            if chooser[idx] < 3:
                chooser[idx] += 1
        elif value_ok and not stride_ok:
            if chooser[idx] > 0:
                chooser[idx] -= 1
        delta = (value - prev) & _U64
        if delta == stride[idx]:
            if conf[idx] < 3:
                conf[idx] += 1
        else:
            stride[idx] = delta
            conf[idx] = 1 if delta else 0
        last[idx] = value
    return hits, idxs


def stage_a_generic(events: SweepEvents,
                    config: LVPConfig) -> tuple[np.ndarray, list]:
    """Object-based pass through the real predictor classes.

    Using :func:`~repro.lvp.unit.build_predictor` -- the same factory
    the LVP unit uses -- guarantees identical table semantics for every
    family without duplicating their update rules here.
    """
    table = build_predictor(config)
    hits = np.empty(events.n_loads, dtype=bool)
    idxs: list[int] = []
    append_idx = idxs.append
    would = table.would_be_correct
    index_of = table.index_of
    update = table.update
    if config.index_mode == "gshare":
        if events.lb_kinds is None:
            raise ConfigError(
                "gshare configurations need a branch-aware decode "
                "(decode_events(..., branches=True))")
        record_branch = table.record_branch
        i = 0
        for kind, pc, value, taken in zip(events.lb_kinds, events.lb_pcs,
                                          events.lb_values,
                                          events.lb_takens):
            if kind:
                record_branch(bool(taken))
                continue
            hits[i] = would(pc, value)
            append_idx(index_of(pc))
            update(pc, value)
            i += 1
        return hits, idxs
    for i, (pc, value) in enumerate(zip(events.load_pcs,
                                        events.load_values)):
        hits[i] = would(pc, value)
        append_idx(index_of(pc))
        update(pc, value)
    return hits, idxs


def run_stage_a(events: SweepEvents,
                config: LVPConfig) -> tuple[np.ndarray, list]:
    """Dispatch one configuration to its fastest exact stage-A pass."""
    if config.index_mode == "gshare" or config.lvpt_tagged:
        return stage_a_generic(events, config)
    if config.predictor == "history":
        if config.history_depth == 1:
            return stage_a_last_value(events, config.lvpt_entries)
        return stage_a_history_pc(events, config)
    if config.predictor == "stride":
        return stage_a_stride(events, config.lvpt_entries)
    if config.predictor == "fcm":
        return stage_a_fcm(events, config.lvpt_entries,
                           config.history_depth)
    if config.predictor == "lastn":
        if config.history_depth == 1:
            return stage_a_last_value(events, config.lvpt_entries)
        return stage_a_lastn(events, config.lvpt_entries,
                             config.history_depth)
    if config.predictor == "hybrid":
        return stage_a_hybrid(events, config.lvpt_entries)
    # A predictor family this engine has no fast path for yet: the
    # object path is always correct.
    return stage_a_generic(events, config)


# ---------------------------------------------------------------------------
# Stage B: the classifier pass.
# ---------------------------------------------------------------------------
_DONT = int(LoadClass.DONT_PREDICT)
_PREDICT = int(LoadClass.PREDICT)
_CONST = int(LoadClass.CONSTANT)


def run_stage_b(events: SweepEvents, hit_list: list,
                lct_entries: int, lct_bits: int,
                lidx=None, hits_np: Optional[np.ndarray] = None
                ) -> np.ndarray:
    """Evolve the LCT counters over the ``would_hit`` stream; returns
    each load's classification code (uint8 LoadClass values).

    Fully vectorized.  An LCT entry is a saturating counter: each load
    applies ``c -> clip(c +- 1, 0, max)``, and clip-affine maps
    ``c -> min(hi, max(lo, c + a))`` are closed under composition, so
    the per-entry counter stream is a segmented inclusive prefix scan
    over ``(a, lo, hi)`` triples.  Loads are grouped per entry with a
    stable argsort (the same groupby trick as stage A) and the scan
    runs Hillis-Steele doubling with a segment guard -- O(n log n)
    numpy work, no per-load Python loop.
    """
    if lidx is None:
        lidx = pc_indices(events.load_pcs_np, lct_entries)
    else:
        lidx = np.asarray(lidx, dtype=np.int64)
    n = events.n_loads
    lct_max = (1 << lct_bits) - 1
    # Counter value -> LoadClass code.
    class_of = np.full(lct_max + 1, _DONT, dtype=np.uint8)
    class_of[lct_max] = _CONST
    if lct_bits > 1:
        class_of[lct_max - 1] = _PREDICT
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    if hits_np is None:
        hits_np = np.fromiter(hit_list, dtype=bool, count=n)

    order = np.argsort(lidx, kind="stable")
    seg = lidx[order]
    # Per-load step function (a, lo, hi): clip(c + a, 0, lct_max).
    # int32 is ample: |a| <= n < 2**31 and lo/hi stay within it too.
    comp_a = np.where(hits_np[order], 1, -1).astype(np.int32)
    comp_lo = np.zeros(n, dtype=np.int32)
    comp_hi = np.full(n, lct_max, dtype=np.int32)

    pos = np.arange(n, dtype=np.int32)
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(seg[1:], seg[:-1], out=head[1:])
    start = np.maximum.accumulate(np.where(head, pos, 0))
    longest = int((pos - start).max()) + 1

    # Segmented inclusive scan: compose element k with k-o (applied
    # first) while k-o is still inside k's segment.  Composition law
    # for f=(a1,lo1,hi1) then g=(a2,lo2,hi2):
    #   a = a1+a2; lo = max(lo2, lo1+a2); hi = min(hi2, max(lo2, hi1+a2))
    offset = 1
    while offset < longest:
        can = pos - offset >= start
        src = np.where(can, pos - offset, pos)
        prev_a = comp_a[src]
        prev_lo = comp_lo[src]
        prev_hi = comp_hi[src]
        new_a = prev_a + comp_a
        new_lo = np.maximum(comp_lo, prev_lo + comp_a)
        new_hi = np.minimum(comp_hi, np.maximum(comp_lo, prev_hi + comp_a))
        comp_a = np.where(can, new_a, comp_a)
        comp_lo = np.where(can, new_lo, comp_lo)
        comp_hi = np.where(can, new_hi, comp_hi)
        offset <<= 1

    # Counter AFTER load k (applied to the entry's initial 0), then
    # shifted: the classification reads the counter BEFORE the update.
    after = np.minimum(comp_hi, np.maximum(comp_lo, comp_a))
    before = np.empty(n, dtype=np.int64)
    before[0] = 0
    before[1:] = after[:-1]
    before[head] = 0

    classes = np.empty(n, dtype=np.uint8)
    classes[order] = class_of[before]
    return classes


class LctContext:
    """Per-(predictor, LCT) shared state stage C reuses across every
    CVU capacity: the classification masks, the Table 3 tallies, the
    non-constant outcome template, and the compact CVU event stream."""

    __slots__ = ("const_mask", "n_const", "base_out",
                 "pp", "pnp", "up", "unp", "_streams")

    def __init__(self, hits: np.ndarray, classes: np.ndarray) -> None:
        self.const_mask = classes == _CONST
        self.n_const = int(np.count_nonzero(self.const_mask))
        self.base_out = np.where(
            classes == _PREDICT,
            np.where(hits, int(LoadOutcome.CORRECT),
                     int(LoadOutcome.INCORRECT)),
            int(LoadOutcome.NO_PREDICTION)).astype(np.uint8)
        dont = classes == _DONT
        self.pnp = int(np.count_nonzero(dont & hits))
        self.unp = int(np.count_nonzero(dont & ~hits))
        self.pp = int(np.count_nonzero(~dont & hits))
        self.up = int(np.count_nonzero(~dont & ~hits))
        self._streams: Optional[tuple] = None

    def relevant_streams(self, events: SweepEvents, idxs: list,
                         shift: int, hits: np.ndarray) -> tuple:
        """The CVU-visible event stream: constant-classified loads and
        aliasing stores, in program order, as compact parallel lists.

        Loads carry ``(cam_key, would_hit)``, stores carry their
        snooped ``(first_word, last_word)`` span -- precomputed here
        once per classifier shape instead of once per CVU capacity
        (every configuration sharing this context shares its predictor,
        hence its ``idxs`` and LVPT ``shift``).
        """
        if self._streams is None:
            mem_ord = events.mem_load_ord
            mem_store = events.mem_is_store
            const_load = np.where(
                mem_ord >= 0, self.const_mask[mem_ord], False)
            addrs = events.mem_addrs.astype(np.int64)
            words = addrs & ~7
            last_words = (addrs + np.maximum(
                events.mem_sizes.astype(np.int64), 1) - 1) & ~7
            # The CAM only ever holds words of constant-classified
            # loads, so a single-word store whose word is not among
            # them can never invalidate anything -- drop it here
            # instead of replaying it.  Multi-word stores are rare;
            # keep them all rather than testing their whole span.
            const_words = np.unique(words[const_load])
            aliasing = mem_store & (
                (words != last_words) | np.isin(words, const_words))
            positions = np.nonzero(const_load | aliasing)[0]
            store_flags = mem_store[positions]
            load_sel = ~store_flags
            load_ord = mem_ord[positions][load_sel]
            load_words = words[positions][load_sel]
            firsts = np.where(store_flags, words[positions], 0)
            seconds = np.where(store_flags, last_words[positions], 0)
            seconds[load_sel] = hits[load_ord]
            if load_ord.size and (load_words.min() < 0
                                  or (int(load_words.max())
                                      >> (62 - shift))):
                # Degenerate address range: pack the CAM keys with
                # Python ints (exact at any width).
                first_list = firsts.tolist()
                for i, w, o in zip(np.nonzero(load_sel)[0].tolist(),
                                   load_words.tolist(),
                                   load_ord.tolist()):
                    first_list[i] = (int(w) << shift) | idxs[o]
            else:
                idxs_np = np.asarray(idxs, dtype=np.int64)
                firsts[load_sel] = (load_words << shift) \
                    | idxs_np[load_ord]
                first_list = firsts.tolist()
            self._streams = (store_flags.tolist(), first_list,
                             seconds.tolist())
        return self._streams


# ---------------------------------------------------------------------------
# Stage C: the CVU pass + outcome/stats assembly.
# ---------------------------------------------------------------------------
def run_stage_c(events: SweepEvents, hits: np.ndarray, hit_list: list,
                idxs: list, context: LctContext,
                config: LVPConfig) -> tuple[np.ndarray, LVPStats]:
    """Simulate the CVU over the constant-classified loads and
    assemble one configuration's full per-record outcome array and
    :class:`~repro.lvp.unit.LVPStats` -- bit-identical to a standalone
    :func:`~repro.trace.annotate.annotate_trace` run."""
    n_const = context.n_const
    cvu_entries = config.cvu_entries
    out = context.base_out.copy()

    cvu_ins = cvu_sinv = cvu_dem = cvu_stale = 0
    if n_const and cvu_entries == 0:
        # A zero-entry CVU can never match: every constant-classified
        # load demotes to ordinary verification, and the refused
        # insertions are not counted (the counter bugfix the sweep
        # engine's differential suite locks in).
        cvu_dem = n_const
        out[context.const_mask] = np.where(
            hits[context.const_mask], int(LoadOutcome.CORRECT),
            int(LoadOutcome.INCORRECT))
    elif n_const:
        # CAM keys pack (word, lvpt_index) into one int -- int keys
        # hash faster than tuples and allocate nothing.  The word
        # survives in the high bits for eviction bookkeeping.
        shift = (config.lvpt_entries - 1).bit_length()
        rel_store, rel_first, rel_second = \
            context.relevant_streams(events, idxs, shift, hits)
        cam: OrderedDict = OrderedDict()
        by_addr: dict[int, set] = {}
        cam_move = cam.move_to_end
        cam_pop_lru = cam.popitem
        const_out = bytearray()
        emit = const_out.append
        for is_store, first, second in zip(rel_store, rel_first,
                                           rel_second):
            if not is_store:
                # A constant-classified load: first=key, second=hit.
                if first in cam:
                    if second:
                        cam_move(first)
                        emit(3)
                    else:
                        cvu_stale += 1
                        del cam[first]
                        word = first >> shift
                        holders = by_addr.get(word)
                        if holders is not None:
                            holders.discard(first)
                            if not holders:
                                del by_addr[word]
                        emit(1)
                else:
                    cvu_dem += 1
                    if len(cam) >= cvu_entries:
                        victim = cam_pop_lru(last=False)[0]
                        victims = by_addr.get(victim >> shift)
                        if victims is not None:
                            victims.discard(victim)
                            if not victims:
                                del by_addr[victim >> shift]
                    cam[first] = None
                    word = first >> shift
                    holders = by_addr.get(word)
                    if holders is None:
                        by_addr[word] = {first}
                    else:
                        holders.add(first)
                    cvu_ins += 1
                    emit(2 if second else 1)
            elif first == second:
                # A store within one word (the common case).
                holders = by_addr.pop(first, None)
                if holders:
                    for key in holders:
                        del cam[key]
                    cvu_sinv += len(holders)
            else:
                for word in range(first, second + 8, 8):
                    holders = by_addr.pop(word, None)
                    if holders:
                        for key in holders:
                            del cam[key]
                        cvu_sinv += len(holders)
        out[context.const_mask] = np.frombuffer(const_out, dtype=np.uint8)

    counts = np.bincount(out, minlength=4)
    stats = LVPStats(
        loads=events.n_loads, stores=events.n_stores,
        outcomes={
            LoadOutcome.NO_PREDICTION: int(counts[0]),
            LoadOutcome.INCORRECT: int(counts[1]),
            LoadOutcome.CORRECT: int(counts[2]),
            LoadOutcome.CONSTANT: int(counts[3]),
        },
        predictable_predicted=context.pp,
        predictable_not_predicted=context.pnp,
        unpredictable_predicted=context.up,
        unpredictable_not_predicted=context.unp,
        cvu_insertions=cvu_ins,
        cvu_store_invalidations=cvu_sinv,
        cvu_demotions=cvu_dem,
        cvu_stale_hits=cvu_stale,
    )
    full = np.full(events.n_records, NOT_A_LOAD, dtype=np.uint8)
    full[events.load_positions] = out
    return full, stats
