"""Human-readable rendering of dynamic trace records.

``dump_trace`` prints a window of a trace the way hardware-bringup
tools do: one line per dynamic instruction with its PC, disassembly-
style operands, and — for memory operations — address, value, and
value kind.  Exposed as ``python -m repro trace <bench>``.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.opcodes import Opcode, OpClass, ValueKind
from repro.isa.registers import NO_REG, reg_name
from repro.trace.records import Trace

_KIND_SHORT = {
    int(ValueKind.INT_DATA): "int",
    int(ValueKind.FP_DATA): "fp",
    int(ValueKind.INSTR_ADDR): "iaddr",
    int(ValueKind.DATA_ADDR): "daddr",
}


def format_record(trace: Trace, position: int) -> str:
    """Render one dynamic record as a single line."""
    opcode = Opcode(int(trace.opcode[position]))
    opclass = OpClass(int(trace.opclass[position]))
    pc = int(trace.pc[position])
    dst = int(trace.dst[position])
    sources = [int(trace.src1[position]), int(trace.src2[position])]
    operands = []
    if dst != NO_REG:
        operands.append(reg_name(dst))
    operands.extend(reg_name(s) for s in sources if s != NO_REG)
    text = f"{pc:#010x}  {opcode.name.lower():8s} {', '.join(operands):14s}"

    if opclass in (OpClass.LOAD, OpClass.STORE):
        addr = int(trace.addr[position])
        value = int(trace.value[position])
        kind = _KIND_SHORT.get(int(trace.kind[position]), "?")
        size = int(trace.size[position])
        arrow = "<-" if opclass is OpClass.LOAD else "->"
        text += (f" [{addr:#010x}]{arrow} {value:#x} "
                 f"({kind}, {size}B)")
    elif opclass is OpClass.BRANCH and opcode in (
            Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
            Opcode.BLTU, Opcode.BGEU):
        text += "  taken" if trace.taken[position] else "  not-taken"
    return text.rstrip()


def dump_trace(trace: Trace, start: int = 0,
               count: Optional[int] = 40,
               loads_only: bool = False) -> str:
    """Render a window of *trace* (``count=None`` = to the end)."""
    end = len(trace) if count is None else min(len(trace), start + count)
    lines = []
    for position in range(start, end):
        if loads_only and not trace.is_load[position]:
            continue
        lines.append(f"{position:>8}  {format_record(trace, position)}")
    return "\n".join(lines)
