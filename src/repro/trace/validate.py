"""Trace well-formedness validation.

:func:`validate_trace` checks the structural invariants every consumer
of a trace relies on and returns a list of human-readable violations
(empty = valid).  The harness validates traces loaded from the on-disk
cache; tests validate freshly generated ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.isa.opcodes import CONDITIONAL_BRANCHES, OP_CLASS, Opcode, OpClass
from repro.isa.registers import NUM_REGS
from repro.trace.records import Trace


def validate_trace(trace: Trace) -> list[str]:
    """Return a list of invariant violations in *trace* (empty = OK)."""
    problems: list[str] = []
    if len(trace) == 0:
        return problems

    # Opcode values must be members of the enum...
    min_op, max_op = int(trace.opcode.min()), int(trace.opcode.max())
    if min_op < 1 or max_op > len(Opcode):
        problems.append(f"opcode values outside 1..{len(Opcode)}")
    else:
        # ...and each opclass must agree with its opcode's class.
        expected = np.array(
            [0] + [int(OP_CLASS[Opcode(v)]) for v in range(1, len(Opcode) + 1)],
            dtype=np.uint8,
        )
        if not (expected[trace.opcode] == trace.opclass).all():
            problems.append("opclass column disagrees with opcode classes")

    # Register ids in range (NO_REG = -1 allowed).
    for column in ("dst", "src1", "src2"):
        values = getattr(trace, column)
        if int(values.min()) < -1 or int(values.max()) >= NUM_REGS:
            problems.append(f"{column} register ids out of range")

    is_mem = trace.is_load | trace.is_store
    # Memory ops carry a plausible size; others carry zero.
    mem_sizes = trace.size[is_mem]
    if len(mem_sizes) and not np.isin(mem_sizes, (1, 4, 8)).all():
        problems.append("memory access sizes must be 1, 4, or 8")
    if (trace.size[~is_mem] != 0).any():
        problems.append("non-memory instructions must have size 0")

    # Memory addresses are size-aligned.
    if len(mem_sizes):
        addrs = trace.addr[is_mem]
        if ((addrs % trace.size[is_mem]) != 0).any():
            problems.append("misaligned memory access recorded")

    # Taken flags only on conditional branches.
    conditional = np.isin(
        trace.opcode, [int(o) for o in CONDITIONAL_BRANCHES])
    if (trace.taken[~conditional] != 0).any():
        problems.append("taken flag set on a non-conditional instruction")

    # PCs lie in the text segment and are instruction-aligned.
    if (trace.pc % 4 != 0).any():
        problems.append("unaligned instruction addresses")

    # The trace ends at a halt or a return out of main.
    final = Opcode(int(trace.opcode[-1]))
    if OP_CLASS[final] is not OpClass.BRANCH:
        problems.append(f"trace ends with {final.name}, not a control "
                        "transfer")
    return problems


def require_valid(trace: Trace) -> Trace:
    """Raise :class:`TraceError` if *trace* violates any invariant."""
    problems = validate_trace(trace)
    if problems:
        raise TraceError(
            f"invalid trace {trace.name!r}: " + "; ".join(problems)
        )
    return trace
