"""Trace well-formedness validation.

:func:`validate_trace` checks the structural invariants every consumer
of a trace relies on and returns a list of human-readable violations
(empty = valid).  The harness validates traces loaded from the on-disk
cache; tests validate freshly generated ones; the fault-injection
doctor (:mod:`repro.faults`) relies on these checks catching every
structural corruption it plants.

The checks are written defensively: a trace that is *already* corrupt
(opcode 0, zero-sized memory ops, hostile dtypes) must produce
violation messages, never a crash or a numpy warning, and one
violation must not mask another.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.isa.opcodes import CONDITIONAL_BRANCHES, OP_CLASS, Opcode, OpClass
from repro.isa.registers import NUM_REGS
from repro.trace.records import Trace


def validate_trace(trace: Trace) -> list[str]:
    """Return a list of invariant violations in *trace* (empty = OK)."""
    problems: list[str] = []
    if len(trace) == 0:
        return problems

    # Opcode values must be members of the enum.  Work on a signed
    # copy so comparisons behave even if a column arrived with an
    # unusual (e.g. unsigned or over-wide) dtype.
    opcode = np.asarray(trace.opcode, dtype=np.int64)
    valid_opcode = (opcode >= 1) & (opcode <= len(Opcode))
    if not valid_opcode.all():
        problems.append(f"opcode values outside 1..{len(Opcode)}")
    # Each opclass must agree with its opcode's class; checked on the
    # rows whose opcode is valid so a single bad opcode elsewhere
    # cannot mask an independent opclass mismatch.
    if valid_opcode.any():
        expected = np.array(
            [0] + [int(OP_CLASS[Opcode(v)]) for v in range(1, len(Opcode) + 1)],
            dtype=np.uint8,
        )
        checkable = opcode[valid_opcode]
        if not (expected[checkable]
                == np.asarray(trace.opclass)[valid_opcode]).all():
            problems.append("opclass column disagrees with opcode classes")

    # Register ids in range (NO_REG = -1 allowed).  Cast to a signed
    # dtype before comparing: taking .min() of an unsigned column
    # would silently wrap negative ids out of detection range.
    for column in ("dst", "src1", "src2"):
        values = np.asarray(getattr(trace, column), dtype=np.int64)
        if int(values.min()) < -1 or int(values.max()) >= NUM_REGS:
            problems.append(f"{column} register ids out of range")

    is_mem = trace.is_load | trace.is_store
    # Memory ops carry a plausible size; others carry zero.
    mem_sizes = np.asarray(trace.size[is_mem], dtype=np.int64)
    if len(mem_sizes) and not np.isin(mem_sizes, (1, 4, 8)).all():
        problems.append("memory access sizes must be 1, 4, or 8")
    if (trace.size[~is_mem] != 0).any():
        problems.append("non-memory instructions must have size 0")

    # Memory addresses are size-aligned.  Rows whose size is zero (a
    # corruption already reported above) are excluded so the modulo
    # cannot divide by zero.
    nonzero = mem_sizes > 0
    if nonzero.any():
        addrs = np.asarray(trace.addr[is_mem], dtype=np.uint64)[nonzero]
        if ((addrs % mem_sizes[nonzero].astype(np.uint64)) != 0).any():
            problems.append("misaligned memory access recorded")

    # Taken flags only on conditional branches.
    conditional = np.isin(
        opcode, [int(o) for o in CONDITIONAL_BRANCHES])
    if (trace.taken[~conditional] != 0).any():
        problems.append("taken flag set on a non-conditional instruction")

    # PCs lie in the text segment and are instruction-aligned.
    if (trace.pc % 4 != 0).any():
        problems.append("unaligned instruction addresses")

    # The trace ends at a halt or a return out of main.  Only
    # meaningful when the final opcode is itself a valid enum member
    # (an invalid one was already reported above).
    final_value = int(opcode[-1])
    if 1 <= final_value <= len(Opcode):
        final = Opcode(final_value)
        if OP_CLASS[final] is not OpClass.BRANCH:
            problems.append(f"trace ends with {final.name}, not a control "
                            "transfer")
    return problems


def require_valid(trace: Trace) -> Trace:
    """Raise :class:`TraceError` if *trace* violates any invariant."""
    problems = validate_trace(trace)
    if problems:
        raise TraceError(
            f"invalid trace {trace.name!r}: " + "; ".join(problems)
        )
    return trace
