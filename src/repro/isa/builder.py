"""Programmatic code generator for VRISC programs.

:class:`CodeBuilder` plays the role of a 1990s optimizing RISC compiler
back-end.  Beyond one method per opcode it provides the higher-level
idioms whose loads the paper identifies as the *sources* of value
locality (Section 2 of the paper):

* **constant pools** -- large integer and all FP constants are loaded
  from memory ("program constants"),
* **TOC / literal-pool addressing** -- global addresses are loaded from a
  loader-initialized table ("addressability", "glue code"),
* **function prologue/epilogue** -- the link register and callee-saved
  registers are saved to and restored from the stack frame
  ("call-subgraph identities", "register spill code"),
* **jump tables** -- computed branches load a code address from a table
  ("computed branches"),
* **function-pointer calls** -- indirect calls load an instruction
  address from memory ("virtual function calls").

The builder is parameterized by a code-generation *target*:

* ``"ppc"`` models a TOC-centric compiler (IBM xlc-like): any constant
  that does not fit in 16 bits, and **every** global address, comes from
  a memory load through the TOC register.
* ``"alpha"`` models a GP-relative compiler (DEC cc-like): integer
  constants up to 32 bits are materialized inline and global addresses
  are formed inline (``lda``-style), so fewer loads are emitted; FP and
  64-bit literals still come from the literal pool.

The two targets stand in for the paper's two ISAs; see DESIGN.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, Target
from repro.isa.opcodes import Opcode, ValueKind
from repro.isa.program import DATA_BASE, DataSegment, Program, float_to_bits
from repro.isa.registers import CTR, LR, NO_REG, SP, TOC, is_fpr

TARGETS = ("ppc", "alpha")

#: Inline-immediate reach per target (signed).
_IMM_BITS = {"ppc": 16, "alpha": 32}

_WORD = 8


class _Function:
    """Book-keeping for the function currently being emitted."""

    def __init__(self, name: str, save: tuple[int, ...], frame_words: int,
                 leaf: bool) -> None:
        self.name = name
        self.save = save
        self.frame_words = frame_words
        self.leaf = leaf
        self.epilogue_label = f"__{name}__epilogue"
        # Frame layout: [0] saved LR (non-leaf), then saved regs, then locals.
        self.lr_slot = 0
        first = 1 if not leaf else 0
        self.reg_slots = {r: (first + i) * _WORD for i, r in enumerate(save)}
        self.locals_base = (first + len(save)) * _WORD

    @property
    def frame_size(self) -> int:
        reserved = self.locals_base // _WORD
        return (reserved + self.frame_words) * _WORD


class CodeBuilder:
    """Builds a linked :class:`Program` through compiler-like emission.

    Typical use::

        b = CodeBuilder("demo", target="ppc")
        table = b.data.words([3, 1, 4, 1, 5])
        with b.function("main"):
            b.load_addr(4, "my_table")      # may become a TOC load
            b.ld(5, 4, 0)
            b.halt()
        program = b.build()
    """

    def __init__(self, name: str, target: str = "ppc") -> None:
        if target not in TARGETS:
            raise AssemblyError(f"unknown codegen target: {target!r}")
        self.name = name
        self.target = target
        self.data = DataSegment()
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}
        self._pool: dict[tuple[int, int], int] = {}  # (value, kind) -> addr
        self._addr_pool: dict[str, int] = {}  # symbol -> pool slot addr
        self._fresh = 0
        self._function: Optional[_Function] = None
        self._imm_max = (1 << (_IMM_BITS[target] - 1)) - 1
        self._imm_min = -(1 << (_IMM_BITS[target] - 1))

    # ------------------------------------------------------------------
    # label and emission primitives
    # ------------------------------------------------------------------
    def label(self, name: str) -> str:
        """Define code label *name* at the current position."""
        if name in self.labels:
            raise AssemblyError(f"duplicate code label: {name!r}")
        self.labels[name] = len(self.instructions)
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Return a unique, not-yet-defined label name."""
        self._fresh += 1
        return f"__{hint}_{self._fresh}"

    def emit(self, instr: Instruction) -> Instruction:
        """Append a raw instruction."""
        self.instructions.append(instr)
        return instr

    def _op(self, opcode: Opcode, dst: int = NO_REG, src1: int = NO_REG,
            src2: int = NO_REG, imm: int = 0,
            target: Optional[Target] = None,
            symbol: Optional[str] = None) -> Instruction:
        return self.emit(Instruction(opcode, dst, src1, src2, imm,
                                     target, symbol))

    # ------------------------------------------------------------------
    # simple integer ops
    # ------------------------------------------------------------------
    def add(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.ADD, dst, a, b)

    def addi(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.ADDI, dst, a, imm=imm)

    def sub(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SUB, dst, a, b)

    def and_(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.AND, dst, a, b)

    def andi(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.ANDI, dst, a, imm=imm)

    def or_(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.OR, dst, a, b)

    def ori(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.ORI, dst, a, imm=imm)

    def xor(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.XOR, dst, a, b)

    def xori(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.XORI, dst, a, imm=imm)

    def sll(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SLL, dst, a, b)

    def slli(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.SLLI, dst, a, imm=imm)

    def srl(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SRL, dst, a, b)

    def srli(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.SRLI, dst, a, imm=imm)

    def sra(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SRA, dst, a, b)

    def srai(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.SRAI, dst, a, imm=imm)

    def slt(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SLT, dst, a, b)

    def slti(self, dst: int, a: int, imm: int) -> None:
        self._op(Opcode.SLTI, dst, a, imm=imm)

    def sltu(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SLTU, dst, a, b)

    def seq(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.SEQ, dst, a, b)

    def li(self, dst: int, imm: int) -> None:
        """Materialize an immediate directly (bypasses the constant pool)."""
        self._op(Opcode.LI, dst, imm=imm)

    def la(self, dst: int, symbol: str) -> None:
        """Form the address of *symbol* inline (no memory access)."""
        self._op(Opcode.LA, dst, symbol=symbol)

    def mov(self, dst: int, src: int) -> None:
        self._op(Opcode.MOV, dst, src)

    def nop(self) -> None:
        self._op(Opcode.NOP)

    # ------------------------------------------------------------------
    # complex integer ops
    # ------------------------------------------------------------------
    def mul(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.MUL, dst, a, b)

    def div(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.DIV, dst, a, b)

    def rem(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.REM, dst, a, b)

    def mflr(self, dst: int) -> None:
        self._op(Opcode.MFLR, dst, LR)

    def mtlr(self, src: int) -> None:
        self._op(Opcode.MTLR, LR, src)

    def mfctr(self, dst: int) -> None:
        self._op(Opcode.MFCTR, dst)

    def mtctr(self, src: int) -> None:
        self._op(Opcode.MTCTR, NO_REG, src)

    # ------------------------------------------------------------------
    # memory ops
    # ------------------------------------------------------------------
    def ld(self, dst: int, base: int, offset: int = 0) -> None:
        self._op(Opcode.LD, dst, base, imm=offset)

    def lw(self, dst: int, base: int, offset: int = 0) -> None:
        self._op(Opcode.LW, dst, base, imm=offset)

    def lbu(self, dst: int, base: int, offset: int = 0) -> None:
        self._op(Opcode.LBU, dst, base, imm=offset)

    def fld(self, dst: int, base: int, offset: int = 0) -> None:
        if not is_fpr(dst):
            raise AssemblyError("fld destination must be an FPR")
        self._op(Opcode.FLD, dst, base, imm=offset)

    def st(self, src: int, base: int, offset: int = 0) -> None:
        self._op(Opcode.ST, NO_REG, base, src, imm=offset)

    def stw(self, src: int, base: int, offset: int = 0) -> None:
        self._op(Opcode.STW, NO_REG, base, src, imm=offset)

    def sb(self, src: int, base: int, offset: int = 0) -> None:
        self._op(Opcode.SB, NO_REG, base, src, imm=offset)

    def fst(self, src: int, base: int, offset: int = 0) -> None:
        if not is_fpr(src):
            raise AssemblyError("fst source must be an FPR")
        self._op(Opcode.FST, NO_REG, base, src, imm=offset)

    # ------------------------------------------------------------------
    # floating point
    # ------------------------------------------------------------------
    def fadd(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FADD, dst, a, b)

    def fsub(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FSUB, dst, a, b)

    def fmul(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FMUL, dst, a, b)

    def fdiv(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FDIV, dst, a, b)

    def fneg(self, dst: int, a: int) -> None:
        self._op(Opcode.FNEG, dst, a)

    def fabs_(self, dst: int, a: int) -> None:
        self._op(Opcode.FABS, dst, a)

    def fsqrt(self, dst: int, a: int) -> None:
        self._op(Opcode.FSQRT, dst, a)

    def fcvt(self, dst: int, a: int) -> None:
        """dst(FPR) <- float(a GPR)."""
        self._op(Opcode.FCVT, dst, a)

    def ftrunc(self, dst: int, a: int) -> None:
        """dst(GPR) <- trunc(a FPR)."""
        self._op(Opcode.FTRUNC, dst, a)

    def flt(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FLT, dst, a, b)

    def feq(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FEQ, dst, a, b)

    def fle(self, dst: int, a: int, b: int) -> None:
        self._op(Opcode.FLE, dst, a, b)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def beq(self, a: int, b: int, target: Target) -> None:
        self._op(Opcode.BEQ, src1=a, src2=b, target=target)

    def bne(self, a: int, b: int, target: Target) -> None:
        self._op(Opcode.BNE, src1=a, src2=b, target=target)

    def blt(self, a: int, b: int, target: Target) -> None:
        self._op(Opcode.BLT, src1=a, src2=b, target=target)

    def bge(self, a: int, b: int, target: Target) -> None:
        self._op(Opcode.BGE, src1=a, src2=b, target=target)

    def bltu(self, a: int, b: int, target: Target) -> None:
        self._op(Opcode.BLTU, src1=a, src2=b, target=target)

    def bgeu(self, a: int, b: int, target: Target) -> None:
        self._op(Opcode.BGEU, src1=a, src2=b, target=target)

    def beqz(self, a: int, target: Target) -> None:
        self.beq(a, 0, target)

    def bnez(self, a: int, target: Target) -> None:
        self.bne(a, 0, target)

    def j(self, target: Target) -> None:
        self._op(Opcode.J, target=target)

    def jal(self, target: Target) -> None:
        self._op(Opcode.JAL, dst=LR, target=target)

    def jalr(self, src: int) -> None:
        self._op(Opcode.JALR, dst=LR, src1=src)

    def jr(self, src: int) -> None:
        self._op(Opcode.JR, src1=src)

    def ret(self) -> None:
        self._op(Opcode.RET, src1=LR)

    def bctr(self) -> None:
        self._op(Opcode.BCTR, src1=CTR)

    def halt(self) -> None:
        self._op(Opcode.HALT)

    # ------------------------------------------------------------------
    # compiler idioms (the paper's sources of value locality)
    # ------------------------------------------------------------------
    def _pool_slot(self, value: int, kind: ValueKind) -> int:
        """Address of a deduplicated constant-pool word holding *value*."""
        key = (value & ((1 << 64) - 1), int(kind))
        addr = self._pool.get(key)
        if addr is None:
            addr = self.data.word(value, kind)
            self._pool[key] = addr
        return addr

    def load_const(self, dst: int, value: int) -> None:
        """Materialize integer constant *value* the way the target would.

        Small constants become immediates; larger ones are loaded from
        the constant pool through the TOC/GP register (a memory load --
        the paper's "program constants" idiom).
        """
        if self._imm_min <= value <= self._imm_max:
            self.li(dst, value)
        else:
            addr = self._pool_slot(value, ValueKind.INT_DATA)
            self.ld(dst, TOC, addr - DATA_BASE)

    def load_fconst(self, dst: int, value: float) -> None:
        """Materialize FP constant *value* (always a constant-pool load)."""
        if not is_fpr(dst):
            raise AssemblyError("load_fconst destination must be an FPR")
        addr = self._pool_slot(float_to_bits(value), ValueKind.FP_DATA)
        self.fld(dst, TOC, addr - DATA_BASE)

    def load_addr(self, dst: int, symbol: str) -> None:
        """Form the address of global *symbol* the way the target would.

        The ``ppc`` target loads it from a loader-initialized TOC slot
        (the paper's "addressability" idiom); the ``alpha`` target forms
        it inline, GP-relative.
        """
        if self.target == "ppc":
            slot = self._addr_pool.get(symbol)
            if slot is None:
                slot = self.data.pointer(symbol, ValueKind.DATA_ADDR)
                self._addr_pool[symbol] = slot
            self.ld(dst, TOC, slot - DATA_BASE)
        else:
            self.la(dst, symbol)

    def call(self, name: str) -> None:
        """Direct call to function *name* within this compilation unit."""
        self.jal(name)

    def call_far(self, name: str, scratch: int = 12) -> None:
        """Cross-module call through a function descriptor ("glue code").

        Loads the callee's address from a loader-initialized pool slot
        (an INSTR_ADDR load that is constant for the whole run) and
        calls indirectly through it.
        """
        slot = self._addr_pool.get("__fd_" + name)
        if slot is None:
            slot = self.data.pointer(name, ValueKind.INSTR_ADDR)
            self._addr_pool["__fd_" + name] = slot
        self.ld(scratch, TOC, slot - DATA_BASE)
        self.jalr(scratch)

    def call_ptr(self, reg: int) -> None:
        """Indirect call through a function pointer already in *reg*."""
        self.jalr(reg)

    def jump_table(self, index_reg: int, case_labels: Sequence[str],
                   scratch: int = 12, scratch2: int = 11) -> None:
        """Computed branch via a jump table (switch-statement idiom).

        Emits the bounds-free dispatch sequence: load the table base (a
        run-time constant -- the paper's "computed branches" idiom),
        index it, load the code address, and branch through CTR.
        The caller is responsible for *index_reg* being in range.
        """
        table = self.fresh_label("jt")
        self.data.label(table)
        for case in case_labels:
            self.data.pointer(case, ValueKind.INSTR_ADDR)
        self.load_addr(scratch, table)
        self.slli(scratch2, index_reg, 3)
        self.add(scratch, scratch, scratch2)
        self.ld(scratch, scratch, 0)
        self.mtctr(scratch)
        self.bctr()

    # ------------------------------------------------------------------
    # functions: prologue / epilogue / stack frames
    # ------------------------------------------------------------------
    @contextmanager
    def function(self, name: str, save: Sequence[int] = (),
                 frame_words: int = 0, leaf: bool = False) -> Iterator[None]:
        """Emit function *name* with a compiler-standard frame.

        *save* lists callee-saved registers (GPR or FPR) to spill in the
        prologue and reload in the epilogue; non-leaf functions also
        save and restore the link register through memory (the paper's
        "call-subgraph identities" idiom).  *frame_words* reserves local
        stack slots addressable via :meth:`local_offset`.
        """
        if self._function is not None:
            raise AssemblyError("nested function definitions are not allowed")
        func = _Function(name, tuple(save), frame_words, leaf)
        self._function = func
        self.label(name)
        self._emit_prologue(func)
        try:
            yield
        finally:
            self.label(func.epilogue_label)
            self._emit_epilogue(func)
            self._function = None

    def _emit_prologue(self, func: _Function) -> None:
        if func.frame_size:
            self.addi(SP, SP, -func.frame_size)
        if not func.leaf:
            self.mflr(11)
            self.st(11, SP, func.lr_slot * _WORD)
        for reg, offset in func.reg_slots.items():
            if is_fpr(reg):
                self.fst(reg, SP, offset)
            else:
                self.st(reg, SP, offset)

    def _emit_epilogue(self, func: _Function) -> None:
        for reg, offset in func.reg_slots.items():
            if is_fpr(reg):
                self.fld(reg, SP, offset)
            else:
                self.ld(reg, SP, offset)
        if not func.leaf:
            self.ld(11, SP, func.lr_slot * _WORD)
            self.mtlr(11)
        if func.frame_size:
            self.addi(SP, SP, func.frame_size)
        self.ret()

    def local_offset(self, slot: int) -> int:
        """Stack offset (from SP) of local word *slot* in the open function."""
        func = self._require_function()
        if not 0 <= slot < func.frame_words:
            raise AssemblyError(
                f"local slot {slot} out of range 0..{func.frame_words - 1}"
            )
        return func.locals_base + slot * _WORD

    def store_local(self, src: int, slot: int) -> None:
        """Spill *src* to local *slot* ("register spill code" idiom)."""
        offset = self.local_offset(slot)
        if is_fpr(src):
            self.fst(src, SP, offset)
        else:
            self.st(src, SP, offset)

    def load_local(self, dst: int, slot: int) -> None:
        """Reload local *slot* into *dst*."""
        offset = self.local_offset(slot)
        if is_fpr(dst):
            self.fld(dst, SP, offset)
        else:
            self.ld(dst, SP, offset)

    def return_from_function(self) -> None:
        """Jump to the open function's epilogue (early return)."""
        func = self._require_function()
        self.j(func.epilogue_label)

    def _require_function(self) -> _Function:
        if self._function is None:
            raise AssemblyError("no function is currently open")
        return self._function

    # ------------------------------------------------------------------
    def build(self, entry: str = "main") -> Program:
        """Finalize and link the program."""
        if self._function is not None:
            raise AssemblyError(
                f"function {self._function.name!r} was never closed"
            )
        program = Program(self.instructions, self.data, self.labels,
                          entry=entry, name=self.name)
        return program.link()
