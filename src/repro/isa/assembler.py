"""A small text assembler for VRISC.

The assembler exists so tests, examples, and users can write programs as
plain text rather than through :class:`repro.isa.builder.CodeBuilder`.
It supports the full instruction set plus a handful of directives::

    .data                 ; switch to the data segment
    .text                 ; switch to the text segment (default)
    .word 1, 2, 3         ; emit 64-bit words
    .double 3.14          ; emit IEEE doubles
    .string "hello"       ; emit a NUL-terminated string
    .space 16             ; reserve 16 zeroed words
    .ptr some_label       ; emit a loader-relocated pointer

    label:                ; define a label in the current segment
    add r3, r4, r5        ; instructions: mnemonic dst, srcs / imm
    ld  r3, 8(r4)         ; loads/stores use offset(base) syntax
    beq r3, r0, done      ; branches name their target label

Comments run from ``;`` or ``#`` to end of line.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode, OpClass, op_class
from repro.isa.program import DataSegment, Program
from repro.isa.registers import LR, NO_REG, parse_reg

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")

# Opcodes whose single operand is an immediate/symbol rather than registers.
_IMM_ONLY = {Opcode.LI, Opcode.LA}
# dst <- src1 op imm
_REG_REG_IMM = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.SLTI,
}
# dst <- src1 (single-source moves)
_ONE_SOURCE = {
    Opcode.MOV, Opcode.FNEG, Opcode.FABS, Opcode.FSQRT,
    Opcode.FCVT, Opcode.FTRUNC,
}
_LOADS = {Opcode.LD, Opcode.LW, Opcode.LBU, Opcode.FLD}
_STORES = {Opcode.ST, Opcode.STW, Opcode.SB, Opcode.FST}
_COND_BRANCHES = {
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
    Opcode.BLTU, Opcode.BGEU,
}
_NO_OPERANDS = {Opcode.RET, Opcode.BCTR, Opcode.HALT, Opcode.NOP}

# FP-writing opcodes for which an r0 destination is rejected outright.
# Integer writes to r0 are architecturally discarded (hardwired zero),
# but an FP result aimed at r0 is always a programming error -- and it
# used to silently clobber the zero register before the simulator grew
# its write guard.
_FP_R0_CHECKED = {
    Opcode.FLD, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FNEG, Opcode.FABS, Opcode.FSQRT, Opcode.FCVT,
}


def _fp_dst(opcode: Opcode, reg: int) -> int:
    """Validate a parsed destination register for FP-writing opcodes."""
    if reg == 0 and opcode in _FP_R0_CHECKED:
        raise AssemblyError(
            f"{opcode.name.lower()}: r0 is not a valid destination "
            "(the zero register cannot hold an FP result)"
        )
    return reg


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError(f"invalid integer: {text!r}") from exc


class Assembler:
    """Two-pass text assembler producing a linked :class:`Program`."""

    def __init__(self, name: str = "asm") -> None:
        self.name = name

    def assemble(self, source: str, entry: str = "main") -> Program:
        """Assemble *source* text into a linked program."""
        instructions: list[Instruction] = []
        labels: dict[str, int] = {}
        data = DataSegment()
        in_data = False

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
            if not line:
                continue
            try:
                in_data = self._assemble_line(
                    line, instructions, labels, data, in_data
                )
            except (AssemblyError, ValueError) as exc:
                raise AssemblyError(f"line {lineno}: {exc}") from exc

        program = Program(instructions, data, labels, entry=entry,
                          name=self.name)
        return program.link()

    def _assemble_line(
        self,
        line: str,
        instructions: list[Instruction],
        labels: dict[str, int],
        data: DataSegment,
        in_data: bool,
    ) -> bool:
        """Assemble one logical line; returns the new in_data state."""
        while True:
            match = re.match(r"^([A-Za-z_]\w*):\s*(.*)$", line)
            if not match:
                break
            name = match.group(1)
            if in_data:
                data.label(name)
            else:
                if name in labels:
                    raise AssemblyError(f"duplicate label: {name!r}")
                labels[name] = len(instructions)
            line = match.group(2).strip()
        if not line:
            return in_data

        if line.startswith("."):
            return self._directive(line, data, in_data)
        if in_data:
            raise AssemblyError("instructions are not allowed in .data")
        instructions.append(self._instruction(line))
        return in_data

    def _directive(self, line: str, data: DataSegment, in_data: bool) -> bool:
        parts = line.split(None, 1)
        name = parts[0]
        arg = parts[1] if len(parts) > 1 else ""
        if name == ".data":
            return True
        if name == ".text":
            return False
        if not in_data:
            raise AssemblyError(f"{name} directive only allowed in .data")
        if name == ".word":
            data.words(_parse_int(v.strip()) for v in arg.split(","))
        elif name == ".double":
            data.doubles(float(v.strip()) for v in arg.split(","))
        elif name == ".string":
            match = re.match(r'^"(.*)"$', arg.strip())
            if not match:
                raise AssemblyError(".string needs a double-quoted literal")
            data.string(match.group(1).encode("ascii").decode("unicode_escape"))
        elif name == ".space":
            data.space(_parse_int(arg.strip()))
        elif name == ".ptr":
            data.pointer(arg.strip())
        else:
            raise AssemblyError(f"unknown directive: {name}")
        return in_data

    def _instruction(self, line: str) -> Instruction:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [o.strip() for o in operand_text.split(",")] \
            if operand_text else []
        try:
            opcode = Opcode[mnemonic.upper().rstrip("_")]
        except KeyError:
            raise AssemblyError(f"unknown mnemonic: {mnemonic!r}") from None
        return self._encode(opcode, operands)

    def _encode(self, opcode: Opcode, ops: list[str]) -> Instruction:
        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblyError(
                    f"{opcode.name.lower()} expects {count} operands, "
                    f"got {len(ops)}"
                )

        if opcode in _NO_OPERANDS:
            need(0)
            src = LR if opcode == Opcode.RET else NO_REG
            return Instruction(opcode, src1=src)
        if opcode in _IMM_ONLY:
            need(2)
            dst = parse_reg(ops[0])
            symbol: Optional[str] = None
            imm = 0
            if re.match(r"^-?\d|^0x", ops[1]):
                imm = _parse_int(ops[1])
            else:
                symbol = ops[1]
            return Instruction(opcode, dst=dst, imm=imm, symbol=symbol)
        if opcode in _LOADS:
            need(2)
            base, offset = self._mem_operand(ops[1])
            return Instruction(opcode, dst=_fp_dst(opcode, parse_reg(ops[0])),
                               src1=base, imm=offset)
        if opcode in _STORES:
            need(2)
            base, offset = self._mem_operand(ops[1])
            return Instruction(opcode, src1=base, src2=parse_reg(ops[0]),
                               imm=offset)
        if opcode in _COND_BRANCHES:
            need(3)
            return Instruction(opcode, src1=parse_reg(ops[0]),
                               src2=parse_reg(ops[1]), target=ops[2])
        if opcode in (Opcode.J, Opcode.JAL):
            need(1)
            dst = LR if opcode == Opcode.JAL else NO_REG
            return Instruction(opcode, dst=dst, target=ops[0])
        if opcode in (Opcode.JALR, Opcode.JR):
            need(1)
            dst = LR if opcode == Opcode.JALR else NO_REG
            return Instruction(opcode, dst=dst, src1=parse_reg(ops[0]))
        if opcode in (Opcode.MTLR, Opcode.MTCTR):
            need(1)
            dst = LR if opcode == Opcode.MTLR else NO_REG
            return Instruction(opcode, dst=dst, src1=parse_reg(ops[0]))
        if opcode in (Opcode.MFLR, Opcode.MFCTR):
            need(1)
            src = LR if opcode == Opcode.MFLR else NO_REG
            return Instruction(opcode, dst=parse_reg(ops[0]), src1=src)
        if opcode in _REG_REG_IMM:
            need(3)
            return Instruction(opcode, dst=parse_reg(ops[0]),
                               src1=parse_reg(ops[1]),
                               imm=_parse_int(ops[2]))
        if opcode in _ONE_SOURCE:
            need(2)
            return Instruction(opcode, dst=_fp_dst(opcode, parse_reg(ops[0])),
                               src1=parse_reg(ops[1]))
        # Remaining opcodes are three-register ALU/FP forms.
        if op_class(opcode) in (OpClass.SIMPLE_INT, OpClass.COMPLEX_INT,
                                OpClass.FP_SIMPLE, OpClass.FP_COMPLEX):
            need(3)
            return Instruction(opcode, dst=_fp_dst(opcode, parse_reg(ops[0])),
                               src1=parse_reg(ops[1]),
                               src2=parse_reg(ops[2]))
        raise AssemblyError(f"cannot encode opcode: {opcode.name}")

    @staticmethod
    def _mem_operand(text: str) -> tuple[int, int]:
        """Parse ``offset(base)`` into (base register, offset)."""
        match = _MEM_OPERAND.match(text.replace(" ", ""))
        if not match:
            raise AssemblyError(f"invalid memory operand: {text!r}")
        return parse_reg(match.group(2)), _parse_int(match.group(1))


def assemble(source: str, name: str = "asm", entry: str = "main") -> Program:
    """Convenience wrapper: assemble *source* into a linked program."""
    return Assembler(name).assemble(source, entry=entry)
