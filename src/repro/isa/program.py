"""Program container: text segment, data segment, symbols, linking.

Memory layout (all addresses are byte addresses; memory is word-oriented
with 8-byte words, and byte/word accesses extract from containing words):

===============  ==========================================================
``TEXT_BASE``    first instruction; each instruction occupies 4 bytes
``DATA_BASE``    static data (constant pools, globals, tables, strings)
``HEAP_BASE``    bump-allocated heap (``malloc`` in the runtime)
``STACK_TOP``    initial stack pointer; the stack grows downward
===============  ==========================================================
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.errors import AssemblyError, LinkError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode, ValueKind

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0010_0000
HEAP_BASE = 0x0040_0000
STACK_TOP = 0x0080_0000

WORD_SIZE = 8
INSTR_SIZE = 4

_U64_MASK = (1 << 64) - 1


def float_to_bits(x: float) -> int:
    """IEEE-754 double bit pattern of *x*, as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return struct.unpack("<d", struct.pack("<Q", bits & _U64_MASK))[0]


class DataSegment:
    """Builder for a program's static data.

    Data is appended sequentially starting at ``DATA_BASE``.  Each 8-byte
    word carries a :class:`ValueKind` so the functional simulator can track
    what kind of value a load returns (needed for the paper's Figure 2).
    Words holding symbolic addresses are recorded as relocations and fixed
    up at link time, which models the loader-initialized pointer tables
    the paper's "addressability" discussion describes.
    """

    def __init__(self, base: int = DATA_BASE) -> None:
        self._base = base
        self._next = base
        self._words: dict[int, int] = {}
        self._kinds: dict[int, int] = {}
        self._relocations: dict[int, str] = {}  # word addr -> symbol
        self.labels: dict[str, int] = {}

    @property
    def end(self) -> int:
        """First unused byte address after all emitted data."""
        return self._next

    def align(self, boundary: int = WORD_SIZE) -> int:
        """Advance to the next multiple of *boundary*; return new address."""
        rem = self._next % boundary
        if rem:
            self._next += boundary - rem
        return self._next

    def label(self, name: str) -> int:
        """Define *name* at the current (word-aligned) address."""
        self.align()
        if name in self.labels:
            raise AssemblyError(f"duplicate data label: {name!r}")
        self.labels[name] = self._next
        return self._next

    def word(self, value: int, kind: ValueKind = ValueKind.INT_DATA) -> int:
        """Emit one 8-byte word; return its address."""
        self.align()
        addr = self._next
        self._words[addr] = value & _U64_MASK
        self._kinds[addr] = int(kind)
        self._next += WORD_SIZE
        return addr

    def double(self, value: float) -> int:
        """Emit one IEEE double; return its address."""
        return self.word(float_to_bits(value), ValueKind.FP_DATA)

    def pointer(self, symbol: str, kind: ValueKind = ValueKind.DATA_ADDR) -> int:
        """Emit a word that the linker fills with *symbol*'s address."""
        self.align()
        addr = self.word(0, kind)
        self._relocations[addr] = symbol
        return addr

    def words(self, values: Iterable[int],
              kind: ValueKind = ValueKind.INT_DATA) -> int:
        """Emit a sequence of words; return the address of the first."""
        self.align()
        start = self._next
        for v in values:
            self.word(v, kind)
        return start

    def doubles(self, values: Iterable[float]) -> int:
        """Emit a sequence of IEEE doubles; return the first address."""
        self.align()
        start = self._next
        for v in values:
            self.double(v)
        return start

    def bytes_(self, data: bytes, terminate: bool = False) -> int:
        """Emit raw bytes (packed little-endian into words).

        With ``terminate=True`` a NUL byte is appended (C-string style).
        Returns the byte address of the first byte.
        """
        self.align()
        start = self._next
        payload = data + (b"\x00" if terminate else b"")
        for offset in range(0, len(payload), WORD_SIZE):
            chunk = payload[offset:offset + WORD_SIZE]
            chunk = chunk.ljust(WORD_SIZE, b"\x00")
            self.word(struct.unpack("<Q", chunk)[0], ValueKind.INT_DATA)
        return start

    def string(self, text: str) -> int:
        """Emit a NUL-terminated ASCII string; return its address."""
        return self.bytes_(text.encode("ascii"), terminate=True)

    def space(self, num_words: int,
              kind: ValueKind = ValueKind.INT_DATA) -> int:
        """Reserve *num_words* zeroed words; return the first address."""
        return self.words([0] * num_words, kind)

    def initial_memory(
        self, symbols: dict[str, int]
    ) -> tuple[dict[int, int], dict[int, int]]:
        """Resolve relocations; return (word values, word kinds) by address."""
        words = dict(self._words)
        for addr, symbol in self._relocations.items():
            if symbol not in symbols:
                raise LinkError(f"undefined symbol in data segment: {symbol!r}")
            words[addr] = symbols[symbol] & _U64_MASK
        return words, dict(self._kinds)


class Program:
    """A linked VRISC program, ready for functional simulation.

    Use :class:`repro.isa.builder.CodeBuilder` to construct one; direct
    construction is intended for tests and the text assembler.
    """

    def __init__(
        self,
        instructions: list[Instruction],
        data: DataSegment,
        labels: dict[str, int],
        entry: str = "main",
        name: str = "program",
    ) -> None:
        self.instructions = instructions
        self.data = data
        self.name = name
        # Code labels hold instruction *indices* until linked.
        self._code_labels = labels
        self._entry = entry
        self.symbols: dict[str, int] = {}
        self._linked = False

    # -- addressing helpers --------------------------------------------------
    @staticmethod
    def pc_of(index: int) -> int:
        """Byte address of the instruction at position *index*."""
        return TEXT_BASE + index * INSTR_SIZE

    @staticmethod
    def index_of(pc: int) -> int:
        """Instruction position for byte address *pc*."""
        return (pc - TEXT_BASE) // INSTR_SIZE

    @property
    def entry_pc(self) -> int:
        """Byte address of the program entry point."""
        self._require_linked()
        return self.symbols[self._entry]

    def link(self) -> "Program":
        """Resolve all symbolic targets; idempotent.  Returns self."""
        if self._linked:
            return self
        self.symbols = {
            name: self.pc_of(index)
            for name, index in self._code_labels.items()
        }
        for name, addr in self.data.labels.items():
            if name in self.symbols:
                raise LinkError(f"symbol defined in both text and data: {name!r}")
            self.symbols[name] = addr

        for pos, instr in enumerate(self.instructions):
            if isinstance(instr.target, str):
                if instr.target not in self.symbols:
                    raise LinkError(
                        f"undefined branch target {instr.target!r} "
                        f"at instruction {pos}"
                    )
                instr.target = self.symbols[instr.target]
            if instr.symbol is not None and instr.opcode in (
                Opcode.LA, Opcode.LI,
            ):
                if instr.symbol not in self.symbols:
                    raise LinkError(
                        f"undefined symbol {instr.symbol!r} at instruction {pos}"
                    )
                instr.imm = self.symbols[instr.symbol]
        if self._entry not in self.symbols:
            raise LinkError(f"undefined entry point: {self._entry!r}")
        self._linked = True
        return self

    def initial_memory(self) -> tuple[dict[int, int], dict[int, int]]:
        """Loader view of the data segment (values and kinds by address)."""
        self._require_linked()
        return self.data.initial_memory(self.symbols)

    def _require_linked(self) -> None:
        if not self._linked:
            raise LinkError("program is not linked; call link() first")

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (
            f"<Program {self.name!r}: {len(self.instructions)} instructions, "
            f"{self.data.end - DATA_BASE} data bytes>"
        )
