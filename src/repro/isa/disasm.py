"""Disassembler: instructions and programs back to assembler text.

Output uses exactly the syntax :mod:`repro.isa.assembler` accepts, so
``assemble(disassemble(program))`` round-trips (for programs without a
data segment; data is disassembled separately as a summary).  Used by
the CLI's ``disasm`` command and by debugging workflows.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    Opcode,
    OpClass,
    op_class,
)
from repro.isa.program import INSTR_SIZE, Program, TEXT_BASE
from repro.isa.registers import reg_name

_NO_OPERANDS = {Opcode.RET, Opcode.BCTR, Opcode.HALT, Opcode.NOP}
_IMM_ONLY = {Opcode.LI, Opcode.LA}
_ONE_SOURCE = {
    Opcode.MOV, Opcode.FNEG, Opcode.FABS, Opcode.FSQRT,
    Opcode.FCVT, Opcode.FTRUNC,
}
_IMM_ALU = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.SLTI,
}


def disassemble_instruction(instr: Instruction,
                            labels: Optional[dict] = None) -> str:
    """Render one instruction as assembler text.

    *labels* optionally maps absolute addresses to names, used for
    branch targets (falling back to the raw address).
    """
    opcode = instr.opcode
    mnemonic = opcode.name.lower()
    if mnemonic in ("and", "or", "xor"):
        pass  # mnemonics match the assembler's (it strips trailing _)

    def target_text() -> str:
        target = instr.target
        if isinstance(target, str):
            return target
        if labels and target in labels:
            return labels[target]
        return f"0x{target:x}" if target is not None else "?"

    if opcode in _NO_OPERANDS:
        return mnemonic
    if opcode in _IMM_ONLY:
        operand = instr.symbol if instr.symbol else str(instr.imm)
        return f"{mnemonic} {reg_name(instr.dst)}, {operand}"
    if op_class(opcode) is OpClass.LOAD:
        return (f"{mnemonic} {reg_name(instr.dst)}, "
                f"{instr.imm}({reg_name(instr.src1)})")
    if op_class(opcode) is OpClass.STORE:
        return (f"{mnemonic} {reg_name(instr.src2)}, "
                f"{instr.imm}({reg_name(instr.src1)})")
    if opcode in CONDITIONAL_BRANCHES:
        return (f"{mnemonic} {reg_name(instr.src1)}, "
                f"{reg_name(instr.src2)}, {target_text()}")
    if opcode in (Opcode.J, Opcode.JAL):
        return f"{mnemonic} {target_text()}"
    if opcode in (Opcode.JR, Opcode.JALR):
        return f"{mnemonic} {reg_name(instr.src1)}"
    if opcode in (Opcode.MTLR, Opcode.MTCTR):
        return f"{mnemonic} {reg_name(instr.src1)}"
    if opcode in (Opcode.MFLR, Opcode.MFCTR):
        return f"{mnemonic} {reg_name(instr.dst)}"
    if opcode in _IMM_ALU:
        return (f"{mnemonic} {reg_name(instr.dst)}, "
                f"{reg_name(instr.src1)}, {instr.imm}")
    if opcode in _ONE_SOURCE:
        return f"{mnemonic} {reg_name(instr.dst)}, {reg_name(instr.src1)}"
    # three-register ALU/FP forms
    return (f"{mnemonic} {reg_name(instr.dst)}, "
            f"{reg_name(instr.src1)}, {reg_name(instr.src2)}")


def disassemble(program: Program, start: int = 0,
                count: Optional[int] = None) -> str:
    """Render a (linked) program's text segment as assembler source.

    Code labels are re-created at their defining positions; branch
    targets print symbolically where a label exists.
    """
    by_address = {
        address: name for name, address in program.symbols.items()
        if TEXT_BASE <= address < TEXT_BASE
        + len(program.instructions) * INSTR_SIZE
    }
    end = len(program.instructions) if count is None \
        else min(len(program.instructions), start + count)
    lines = []
    for index in range(start, end):
        pc = TEXT_BASE + index * INSTR_SIZE
        if pc in by_address:
            lines.append(f"{by_address[pc]}:")
        text = disassemble_instruction(program.instructions[index],
                                       by_address)
        lines.append(f"    {text}")
    return "\n".join(lines)
