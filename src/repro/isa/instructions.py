"""Instruction representation for the VRISC ISA.

Instructions are small mutable records; targets of control-flow
instructions may be symbolic (a label string) until the program is
finalized, at which point they are resolved to absolute addresses.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    Opcode,
    OpClass,
    op_class,
)
from repro.isa.registers import NO_REG, reg_name

#: A branch target: symbolic before linking, absolute address after.
Target = Union[str, int]


class Instruction:
    """One VRISC instruction.

    Operand field usage by group:

    * ALU register ops: ``dst <- src1 OP src2``
    * ALU immediate ops: ``dst <- src1 OP imm``
    * ``LI``/``LA``: ``dst <- imm`` (for LA, ``imm`` is an address and may
      originate from a symbol recorded in ``symbol``)
    * loads: ``dst <- MEM[src1 + imm]``
    * stores: ``MEM[src1 + imm] <- src2``
    * conditional branches: compare ``src1`` with ``src2``, jump to ``target``
    * ``JAL``/``J``: jump to ``target``
    * ``JALR``/``JR``: jump to address in ``src1``
    """

    __slots__ = ("opcode", "dst", "src1", "src2", "imm", "target", "symbol")

    def __init__(
        self,
        opcode: Opcode,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        imm: int = 0,
        target: Optional[Target] = None,
        symbol: Optional[str] = None,
    ) -> None:
        self.opcode = opcode
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.imm = imm
        self.target = target
        self.symbol = symbol

    @property
    def op_class(self) -> OpClass:
        """Functional-unit class of this instruction."""
        return op_class(self.opcode)

    @property
    def is_conditional_branch(self) -> bool:
        """True for compare-and-branch opcodes (BEQ, BNE, ...)."""
        return self.opcode in CONDITIONAL_BRANCHES

    def source_registers(self) -> tuple[int, ...]:
        """Register ids this instruction reads (excluding NO_REG slots)."""
        return tuple(r for r in (self.src1, self.src2) if r != NO_REG)

    def __repr__(self) -> str:
        parts = [self.opcode.name.lower()]
        if self.dst != NO_REG:
            parts.append(reg_name(self.dst))
        if self.src1 != NO_REG:
            parts.append(reg_name(self.src1))
        if self.src2 != NO_REG:
            parts.append(reg_name(self.src2))
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"->{self.target}")
        if self.symbol is not None:
            parts.append(f"@{self.symbol}")
        return f"<{' '.join(parts)}>"
