"""Register model for the VRISC ISA.

VRISC is the small 64-bit load/store RISC ISA all workloads in this
reproduction are written in.  It has:

* 32 general-purpose registers ``r0``-``r31`` (``r0`` is hardwired to zero),
* 32 floating-point registers ``f0``-``f31``,
* a link register ``LR`` (written by calls, read by returns), and
* a count register ``CTR`` (used for computed branches, PowerPC-style).

Registers are identified by small integers so that traces can store them
compactly: GPRs are ``0..31``, FPRs are ``32..63``, then ``LR`` and ``CTR``.
``NO_REG`` (-1) marks an absent operand slot.
"""

from __future__ import annotations

NUM_GPRS = 32
NUM_FPRS = 32

#: Marker for "no register in this operand slot".
NO_REG = -1

#: First floating-point register id.
FPR_BASE = NUM_GPRS

#: Special-purpose register ids.
LR = FPR_BASE + NUM_FPRS  # link register (64)
CTR = LR + 1  # count register (65)

#: Total number of architected register ids (for register-file sizing).
NUM_REGS = CTR + 1

# --- Software conventions used by the code generator -----------------------
ZERO = 0  # hardwired zero
SP = 1  # stack pointer
TOC = 2  # table-of-contents / global pointer
RV = 3  # integer return value
ARG_REGS = (3, 4, 5, 6, 7, 8, 9, 10)  # integer argument registers
SCRATCH = (11, 12)  # caller-saved scratch
TEMP_REGS = tuple(range(13, 24))  # caller-saved temporaries
SAVED_REGS = tuple(range(24, 32))  # callee-saved

FRV = FPR_BASE + 0  # FP return value
FARG_REGS = tuple(FPR_BASE + i for i in range(0, 8))
FTEMP_REGS = tuple(FPR_BASE + i for i in range(8, 24))
FSAVED_REGS = tuple(FPR_BASE + i for i in range(24, 32))


def is_gpr(reg: int) -> bool:
    """Return True if *reg* names a general-purpose register."""
    return 0 <= reg < NUM_GPRS


def is_fpr(reg: int) -> bool:
    """Return True if *reg* names a floating-point register."""
    return FPR_BASE <= reg < FPR_BASE + NUM_FPRS


def is_special(reg: int) -> bool:
    """Return True if *reg* is LR or CTR."""
    return reg in (LR, CTR)


def reg_name(reg: int) -> str:
    """Human-readable name for a register id (``r5``, ``f2``, ``lr``...)."""
    if reg == NO_REG:
        return "-"
    if is_gpr(reg):
        return f"r{reg}"
    if is_fpr(reg):
        return f"f{reg - FPR_BASE}"
    if reg == LR:
        return "lr"
    if reg == CTR:
        return "ctr"
    raise ValueError(f"invalid register id: {reg}")


def parse_reg(name: str) -> int:
    """Parse a register name (as produced by :func:`reg_name`) to its id."""
    name = name.strip().lower()
    if name == "lr":
        return LR
    if name == "ctr":
        return CTR
    if name.startswith("r") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_GPRS:
            return idx
    if name.startswith("f") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_FPRS:
            return FPR_BASE + idx
    raise ValueError(f"invalid register name: {name!r}")
