"""VRISC: the 64-bit load/store RISC ISA used by all workloads.

Public surface:

* :class:`~repro.isa.opcodes.Opcode`, :class:`~repro.isa.opcodes.OpClass`,
  :class:`~repro.isa.opcodes.ValueKind` -- instruction and value taxonomy,
* :class:`~repro.isa.instructions.Instruction` -- one instruction,
* :class:`~repro.isa.program.Program` / ``DataSegment`` -- linked programs,
* :class:`~repro.isa.builder.CodeBuilder` -- programmatic codegen DSL,
* :func:`~repro.isa.assembler.assemble` -- text assembler.
"""

from repro.isa.assembler import Assembler, assemble
from repro.isa.builder import CodeBuilder, TARGETS
from repro.isa.instructions import Instruction
from repro.isa.opcodes import (
    Opcode,
    OpClass,
    ValueKind,
    is_load,
    is_store,
    op_class,
)
from repro.isa.program import (
    DATA_BASE,
    HEAP_BASE,
    INSTR_SIZE,
    STACK_TOP,
    TEXT_BASE,
    WORD_SIZE,
    DataSegment,
    Program,
    bits_to_float,
    float_to_bits,
)
from repro.isa.registers import (
    ARG_REGS,
    CTR,
    FPR_BASE,
    LR,
    NO_REG,
    NUM_REGS,
    SAVED_REGS,
    SP,
    TEMP_REGS,
    TOC,
    ZERO,
    is_fpr,
    is_gpr,
    parse_reg,
    reg_name,
)

__all__ = [
    "Assembler", "assemble", "CodeBuilder", "TARGETS",
    "Instruction", "Opcode", "OpClass", "ValueKind",
    "is_load", "is_store", "op_class",
    "DataSegment", "Program", "bits_to_float", "float_to_bits",
    "DATA_BASE", "HEAP_BASE", "INSTR_SIZE", "STACK_TOP", "TEXT_BASE",
    "WORD_SIZE",
    "ARG_REGS", "CTR", "FPR_BASE", "LR", "NO_REG", "NUM_REGS",
    "SAVED_REGS", "SP", "TEMP_REGS", "TOC", "ZERO",
    "is_fpr", "is_gpr", "parse_reg", "reg_name",
]
