"""Opcode and operation-class definitions for the VRISC ISA.

Every opcode belongs to exactly one :class:`OpClass`.  The op class decides
which functional unit executes the instruction in the timing models and
which row of the paper's Table 5 supplies its latency.  ``ValueKind``
classifies the *values* flowing through registers and memory; it feeds the
paper's Figure 2 (value locality broken down by data type).
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Functional-unit class of an instruction (paper Table 5 rows)."""

    SIMPLE_INT = 0  # single-cycle fixed point (SCFX)
    COMPLEX_INT = 1  # multi-cycle fixed point (MCFX): mul/div/mfspr
    LOAD = 2  # memory load (LSU)
    STORE = 3  # memory store (LSU)
    FP_SIMPLE = 4  # pipelined FP (FPU): add/sub/mul/convert
    FP_COMPLEX = 5  # long-latency FP (FPU): divide
    BRANCH = 6  # branch unit (BRU)


class ValueKind(enum.IntEnum):
    """Classification of a 64-bit value, for Figure 2 of the paper."""

    INT_DATA = 0  # non-floating-point, non-address data
    FP_DATA = 1  # floating-point data
    INSTR_ADDR = 2  # instruction address (return address, function pointer)
    DATA_ADDR = 3  # data address (pointer)


class Opcode(enum.IntEnum):
    """VRISC opcodes.

    The operand fields each opcode uses are documented per group; see
    :class:`repro.isa.instructions.Instruction` for field meanings.
    """

    # -- simple integer: dst <- src1 OP src2 (or imm) ----------------------
    ADD = enum.auto()
    ADDI = enum.auto()  # dst <- src1 + imm
    SUB = enum.auto()
    AND = enum.auto()
    ANDI = enum.auto()
    OR = enum.auto()
    ORI = enum.auto()
    XOR = enum.auto()
    XORI = enum.auto()
    SLL = enum.auto()  # shift left logical by src2
    SLLI = enum.auto()
    SRL = enum.auto()  # shift right logical
    SRLI = enum.auto()
    SRA = enum.auto()  # shift right arithmetic
    SRAI = enum.auto()
    SLT = enum.auto()  # dst <- 1 if src1 < src2 (signed) else 0
    SLTI = enum.auto()
    SLTU = enum.auto()  # unsigned compare
    SEQ = enum.auto()  # dst <- 1 if src1 == src2 else 0
    LI = enum.auto()  # dst <- imm (constant materialization)
    LA = enum.auto()  # dst <- address of symbol (imm); kind = DATA_ADDR
    MOV = enum.auto()  # dst <- src1

    # -- complex integer (MCFX) --------------------------------------------
    MUL = enum.auto()
    DIV = enum.auto()  # signed divide; divide-by-zero yields 0
    REM = enum.auto()  # signed remainder; modulo-by-zero yields 0
    MFLR = enum.auto()  # dst <- LR       (move-from-special, like mfspr)
    MTLR = enum.auto()  # LR <- src1
    MFCTR = enum.auto()  # dst <- CTR
    MTCTR = enum.auto()  # CTR <- src1

    # -- loads: dst <- MEM[src1 + imm] --------------------------------------
    LD = enum.auto()  # 64-bit load
    LW = enum.auto()  # 32-bit load, sign-extended
    LBU = enum.auto()  # 8-bit load, zero-extended
    FLD = enum.auto()  # 64-bit FP load (dst is an FPR)

    # -- stores: MEM[src1 + imm] <- src2 -------------------------------------
    ST = enum.auto()  # 64-bit store
    STW = enum.auto()  # 32-bit store
    SB = enum.auto()  # 8-bit store
    FST = enum.auto()  # 64-bit FP store (src2 is an FPR)

    # -- floating point (operands are FPRs) ---------------------------------
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()  # FP_COMPLEX
    FNEG = enum.auto()
    FABS = enum.auto()
    FSQRT = enum.auto()  # FP_COMPLEX
    FCVT = enum.auto()  # dst(FPR) <- float(src1 GPR)
    FTRUNC = enum.auto()  # dst(GPR) <- int(src1 FPR), truncating
    FLT = enum.auto()  # dst(GPR) <- 1 if src1 < src2 (FP) else 0
    FEQ = enum.auto()  # dst(GPR) <- 1 if src1 == src2 (FP) else 0
    FLE = enum.auto()  # dst(GPR) <- 1 if src1 <= src2 (FP) else 0

    # -- control flow --------------------------------------------------------
    BEQ = enum.auto()  # if src1 == src2 goto target
    BNE = enum.auto()
    BLT = enum.auto()  # signed
    BGE = enum.auto()
    BLTU = enum.auto()  # unsigned
    BGEU = enum.auto()
    J = enum.auto()  # unconditional jump to target
    JAL = enum.auto()  # call: LR <- return address; goto target
    JALR = enum.auto()  # indirect call: LR <- return addr; goto src1
    JR = enum.auto()  # indirect jump: goto src1 (jump tables)
    RET = enum.auto()  # return: goto LR
    BCTR = enum.auto()  # computed branch: goto CTR
    HALT = enum.auto()  # stop execution

    # -- no-op ----------------------------------------------------------------
    NOP = enum.auto()


#: Map from opcode to its operation class.
OP_CLASS: dict[Opcode, OpClass] = {}

_SIMPLE_INT_OPS = (
    Opcode.ADD, Opcode.ADDI, Opcode.SUB, Opcode.AND, Opcode.ANDI,
    Opcode.OR, Opcode.ORI, Opcode.XOR, Opcode.XORI,
    Opcode.SLL, Opcode.SLLI, Opcode.SRL, Opcode.SRLI, Opcode.SRA,
    Opcode.SRAI, Opcode.SLT, Opcode.SLTI, Opcode.SLTU, Opcode.SEQ,
    Opcode.LI, Opcode.LA, Opcode.MOV, Opcode.NOP,
)
_COMPLEX_INT_OPS = (
    Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.MFLR, Opcode.MTLR, Opcode.MFCTR, Opcode.MTCTR,
)
_LOAD_OPS = (Opcode.LD, Opcode.LW, Opcode.LBU, Opcode.FLD)
_STORE_OPS = (Opcode.ST, Opcode.STW, Opcode.SB, Opcode.FST)
_FP_SIMPLE_OPS = (
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FNEG, Opcode.FABS,
    Opcode.FCVT, Opcode.FTRUNC, Opcode.FLT, Opcode.FEQ, Opcode.FLE,
)
_FP_COMPLEX_OPS = (Opcode.FDIV, Opcode.FSQRT)
_BRANCH_OPS = (
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU,
    Opcode.BGEU, Opcode.J, Opcode.JAL, Opcode.JALR, Opcode.JR,
    Opcode.RET, Opcode.BCTR, Opcode.HALT,
)

for _op in _SIMPLE_INT_OPS:
    OP_CLASS[_op] = OpClass.SIMPLE_INT
for _op in _COMPLEX_INT_OPS:
    OP_CLASS[_op] = OpClass.COMPLEX_INT
for _op in _LOAD_OPS:
    OP_CLASS[_op] = OpClass.LOAD
for _op in _STORE_OPS:
    OP_CLASS[_op] = OpClass.STORE
for _op in _FP_SIMPLE_OPS:
    OP_CLASS[_op] = OpClass.FP_SIMPLE
for _op in _FP_COMPLEX_OPS:
    OP_CLASS[_op] = OpClass.FP_COMPLEX
for _op in _BRANCH_OPS:
    OP_CLASS[_op] = OpClass.BRANCH

assert len(OP_CLASS) == len(Opcode), "every opcode must have an op class"

#: Loads that target a floating-point register.
FP_LOADS = frozenset({Opcode.FLD})

#: Conditional branches (have a taken/not-taken outcome to predict).
CONDITIONAL_BRANCHES = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
    Opcode.BLTU, Opcode.BGEU,
})

#: Indirect control transfers (target comes from a register).
INDIRECT_BRANCHES = frozenset({
    Opcode.JALR, Opcode.JR, Opcode.RET, Opcode.BCTR,
})


def op_class(op: Opcode) -> OpClass:
    """Return the :class:`OpClass` of *op*."""
    return OP_CLASS[op]


def is_load(op: Opcode) -> bool:
    """Return True if *op* is a memory load."""
    return OP_CLASS[op] is OpClass.LOAD


def is_store(op: Opcode) -> bool:
    """Return True if *op* is a memory store."""
    return OP_CLASS[op] is OpClass.STORE
