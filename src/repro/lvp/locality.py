"""Value locality measurement (paper Section 2, Figures 1 and 2).

Value locality of a benchmark is "the number of times each static load
instruction retrieves a value from memory that matches a previously-seen
value for that static load, divided by the total number of dynamic
loads".  Per the paper's footnote 1, the previously-seen values are kept
in a direct-mapped table of 1K entries indexed -- but not tagged -- by
instruction address, with the ``depth`` values at each entry replaced
LRU, so constructive and destructive interference both occur.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import ValueKind
from repro.lvp.lvpt import LVPT
from repro.trace.records import Trace


@dataclass
class LocalityResult:
    """Value locality of one trace at one history depth."""

    name: str
    target: str
    depth: int
    total_loads: int
    hits: int

    @property
    def locality(self) -> float:
        """Fraction of dynamic loads whose value was previously seen."""
        if not self.total_loads:
            return 0.0
        return self.hits / self.total_loads

    @property
    def percent(self) -> float:
        """Locality as a percentage (as plotted in Figures 1 and 2)."""
        return 100.0 * self.locality


def measure_value_locality(trace: Trace, depth: int = 1,
                           entries: int = 1024) -> LocalityResult:
    """Measure load value locality of *trace* at *depth* (Figure 1)."""
    table = LVPT(entries, history_depth=depth, selection="perfect")
    loads = trace.loads()
    pcs = loads.pc.tolist()
    values = loads.value.tolist()
    hits = 0
    check = table.would_be_correct
    update = table.update
    for pc, value in zip(pcs, values):
        if check(pc, value):
            hits += 1
        update(pc, value)
    return LocalityResult(trace.name, trace.target, depth, len(pcs), hits)


def measure_locality_by_kind(
    trace: Trace, depth: int = 1, entries: int = 1024,
) -> dict[ValueKind, LocalityResult]:
    """Measure value locality per :class:`ValueKind` (Figure 2).

    All loads share one history table (interference included); hits and
    totals are then attributed to the kind of the loaded value.
    """
    table = LVPT(entries, history_depth=depth, selection="perfect")
    loads = trace.loads()
    pcs = loads.pc.tolist()
    values = loads.value.tolist()
    kinds = loads.kind.tolist()
    totals = {kind: 0 for kind in ValueKind}
    hits = {kind: 0 for kind in ValueKind}
    check = table.would_be_correct
    update = table.update
    for pc, value, kind in zip(pcs, values, kinds):
        kind = ValueKind(kind)
        totals[kind] += 1
        if check(pc, value):
            hits[kind] += 1
        update(pc, value)
    return {
        kind: LocalityResult(trace.name, trace.target, depth,
                             totals[kind], hits[kind])
        for kind in ValueKind
    }
