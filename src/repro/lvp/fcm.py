"""Finite-context-method (two-level) value prediction.

The gem5VP snippets (SNIPPETS.md 1-3) structure their predictor as two
tables: a *value history table* (VHT) holding, per static load, the
context of the last few observed values, and a *value prediction table*
(VPT) mapping a hash of that context to the value that followed it
last time.  This is the classic FCM organisation (Sazeides & Smith):
where the paper's LVPT replays the last value, an FCM learns *value
sequences* -- a load alternating between two values is hopeless for
last-value prediction but trivial for an order-2 FCM.

Both levels are direct-mapped and untagged, matching the repo's LVPT
conventions (and their interference behaviour).  ``history_depth``
doubles as the FCM *order*: the number of past values folded into the
context hash.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import INSTR_SIZE

_U64 = (1 << 64) - 1
#: Context-hash multiplier (Fibonacci hashing; any odd constant works,
#: this one spreads arithmetic value sequences well).
_HASH_MULT = 0x9E3779B97F4A7C15


class FCMPredictor:
    """Two-level VHT/VPT context-based value predictor.

    Interface-compatible with :class:`repro.lvp.lvpt.LVPT` where the
    LVP unit needs it (``index_of`` / ``predict`` / ``would_be_correct``
    / ``update`` / ``flush``).  The VHT and VPT share ``entries`` slots
    each; ``order`` values of context feed the VPT hash.
    """

    def __init__(self, entries: int, order: int = 4) -> None:
        self.entries = entries
        self.order = max(1, order)
        self._mask = entries - 1
        # VHT: per static-load slot, the last `order` values (oldest
        # first).  A slot predicts only once its context is warm.
        self._vht: list[list[int]] = [[] for _ in range(entries)]
        # VPT: context hash -> the value that followed that context.
        self._vpt: list[Optional[int]] = [None] * entries

    def index_of(self, pc: int) -> int:
        """Table index for a load at instruction address *pc*."""
        return (pc // INSTR_SIZE) & self._mask

    def _vpt_index(self, context: list[int]) -> int:
        """Fold a full value context into a VPT slot."""
        folded = 0
        for value in context:
            folded = ((folded * _HASH_MULT) + value) & _U64
        return (folded ^ (folded >> 32)) & self._mask

    def predict(self, pc: int) -> Optional[int]:
        """Predicted value for *pc* (None while the context is cold)."""
        context = self._vht[self.index_of(pc)]
        if len(context) < self.order:
            return None
        return self._vpt[self._vpt_index(context)]

    def would_be_correct(self, pc: int, actual: int) -> bool:
        """Would the prediction for *pc* match *actual*?"""
        return self.predict(pc) == actual

    def update(self, pc: int, actual: int) -> None:
        """Train both levels on the observed value.

        The VPT learns that the *current* context led to ``actual``;
        the VHT then shifts ``actual`` into the context.  Update order
        matters and mirrors prediction: predict-before-shift.
        """
        context = self._vht[self.index_of(pc)]
        if len(context) >= self.order:
            self._vpt[self._vpt_index(context)] = actual
        context.append(actual)
        if len(context) > self.order:
            context.pop(0)

    def flush(self) -> None:
        """Clear all entries."""
        self._vht = [[] for _ in range(self.entries)]
        self._vpt = [None] * self.entries
