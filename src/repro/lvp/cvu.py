"""Constant Verification Unit (paper Section 3.3).

The CVU is a small fully-associative table (a CAM in hardware).  When a
load that the LCT classifies as *constant* executes, the pair
``(data address, LVPT index)`` is placed in the CVU.  Any later store
whose address matches invalidates the entry.  When the constant load
executes again and finds a matching entry, the value in the LVPT is
guaranteed coherent with memory -- no store can have intervened -- so
the conventional memory hierarchy need not be accessed at all.  If no
entry matches, the load is demoted from constant to merely predictable
and verifies through the cache as usual.

Replacement is LRU over the fixed number of entries.
"""

from __future__ import annotations

from collections import OrderedDict


class CVU:
    """Fully-associative, store-invalidated constant verification unit."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        # (data_addr, lvpt_index) -> None, in LRU order (oldest first).
        self._cam: OrderedDict[tuple[int, int], None] = OrderedDict()
        # Secondary index: data_addr -> set of lvpt indices, so that the
        # store-snoop path is O(1) rather than a scan.
        self._by_addr: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._cam)

    @staticmethod
    def key_of(data_addr: int, lvpt_index: int) -> tuple[int, int]:
        """The CAM key for a (load address, LVPT index) pair.

        Addresses are tracked at word (8-byte) granularity: the CVU must
        be conservative, and snooping every store at word granularity is
        the simplest correct choice for sub-word accesses.  Every CAM
        operation -- match, insert, invalidate -- derives its key here,
        so a caller can never build a key with a different word mask
        than the one the table stores under (this matters for
        index modes like gshare, where the LVPT index itself varies
        with processor state and must be snapshotted once per event).
        """
        return (data_addr & ~7, lvpt_index)

    def match(self, data_addr: int, lvpt_index: int) -> bool:
        """CAM search: is (addr, index) present?  Refreshes LRU on hit."""
        key = self.key_of(data_addr, lvpt_index)
        if key in self._cam:
            self._cam.move_to_end(key)
            return True
        return False

    def insert(self, data_addr: int, lvpt_index: int) -> bool:
        """Place an entry, evicting the LRU entry if the CVU is full.

        Returns True when the pair is present afterwards (newly placed
        or refreshed); False when a zero-entry CVU refused it, so
        callers can count *actual* insertions rather than attempts.
        """
        if self.entries == 0:
            return False
        word, _ = key = self.key_of(data_addr, lvpt_index)
        if key in self._cam:
            self._cam.move_to_end(key)
            return True
        if len(self._cam) >= self.entries:
            victim, _ = self._cam.popitem(last=False)
            self._forget(victim)
        self._cam[key] = None
        self._by_addr.setdefault(word, set()).add(lvpt_index)
        return True

    def invalidate(self, data_addr: int, lvpt_index: int) -> None:
        """Remove one entry (used when a verified value turns out stale)."""
        key = self.key_of(data_addr, lvpt_index)
        if key in self._cam:
            del self._cam[key]
            self._forget(key)

    def snoop_store(self, data_addr: int, size: int = 8) -> int:
        """Invalidate all entries overlapping a store; return the count.

        Stores are snooped at word granularity: a store of *size* bytes
        at *data_addr* invalidates entries for every word it touches
        (sub-word stores invalidate the containing word's entries, since
        CVU entries are recorded at the load's effective address).
        """
        removed = 0
        first_word = data_addr & ~7
        last_word = (data_addr + max(size, 1) - 1) & ~7
        for word in range(first_word, last_word + 8, 8):
            removed += self._invalidate_addr(word)
        return removed

    def _invalidate_addr(self, addr: int) -> int:
        indices = self._by_addr.pop(addr, None)
        if not indices:
            return 0
        for lvpt_index in indices:
            self._cam.pop((addr, lvpt_index), None)
        return len(indices)

    def _forget(self, key: tuple[int, int]) -> None:
        addr, lvpt_index = key
        indices = self._by_addr.get(addr)
        if indices is not None:
            indices.discard(lvpt_index)
            if not indices:
                del self._by_addr[addr]

    def flush(self) -> None:
        """Empty the CVU."""
        self._cam.clear()
        self._by_addr.clear()
