"""Design-space grids of LVP configurations.

The paper evaluates exactly four configurations (Table 2) and varies
one dimension at a time by hand.  The sweep engine
(:mod:`repro.harness.sweep`) evaluates whole grids in one trace pass;
this module builds those grids:

* :func:`expand_grid` -- cartesian product of per-field value lists
  into validated :class:`~repro.lvp.config.LVPConfig` instances,
* :func:`parse_grid_spec` -- the CLI's compact ``dim=v1,v2;dim=...``
  grid syntax,
* :func:`sensitivity_grid` -- the default paperlike sensitivity grid
  (every predictor family crossed with table sizes, counter widths,
  history depths, and CVU capacities; >= 100 design points).

Invalid combinations (a stride predictor with a deep history, say) are
skipped during expansion rather than raised: a grid is a *request* for
the meaningful subset of a cross product.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.lvp.config import LVPConfig, PREDICTORS

#: Grid dimensions accepted by expand_grid / parse_grid_spec, with the
#: CLI short forms, in canonical (name-building) order.
GRID_FIELDS = (
    ("predictor", "predictor"),
    ("lvpt_entries", "lvpt"),
    ("history_depth", "depth"),
    ("selection", "selection"),
    ("lct_entries", "lct"),
    ("lct_bits", "bits"),
    ("cvu_entries", "cvu"),
    ("index_mode", "index"),
    ("ghr_bits", "ghr"),
    ("lvpt_tagged", "tagged"),
)
_FIELD_BY_ALIAS = {alias: field for field, alias in GRID_FIELDS}
_FIELD_BY_ALIAS.update({field: field for field, _ in GRID_FIELDS})

#: Fields whose values are integers in a grid spec.
_INT_FIELDS = {"lvpt_entries", "history_depth", "lct_entries",
               "lct_bits", "cvu_entries", "ghr_bits"}
_BOOL_FIELDS = {"lvpt_tagged"}

#: Default values used for naming: a dimension pinned at its default is
#: omitted from the generated config name to keep names short.
_DEFAULTS = LVPConfig(name="_defaults")


def config_name(values: Mapping[str, object]) -> str:
    """A stable, readable name for one grid cell.

    Built from the non-default dimensions in canonical order, e.g.
    ``sweep/stride/lvpt256/cvu0``.  Stable names are what the sweep
    journal keys its per-cell records on, so resumed sweeps line up.
    """
    parts = []
    for field, alias in GRID_FIELDS:
        value = values.get(field)
        if value is None or value == getattr(_DEFAULTS, field):
            continue
        if field in ("predictor", "selection", "index_mode"):
            parts.append(str(value))
        elif field in _BOOL_FIELDS:
            parts.append(alias)
        else:
            parts.append(f"{alias}{value}")
    return "sweep/" + ("/".join(parts) if parts else "default")


def expand_grid(dimensions: Mapping[str, Sequence],
                base: Optional[Mapping[str, object]] = None,
                limit: Optional[int] = None) -> list[LVPConfig]:
    """Cross *dimensions* into a list of validated configurations.

    ``dimensions`` maps field names (or their CLI aliases) to value
    lists; unspecified fields take :class:`LVPConfig` defaults (or
    *base* overrides).  Combinations :class:`LVPConfig` rejects --
    e.g. ``predictor="stride"`` with ``history_depth=4`` -- are
    skipped.  ``limit`` truncates the expansion after that many valid
    configs (the CLI's quick-look knob).
    """
    import itertools

    fields: list[str] = []
    for raw in dimensions:
        field = _FIELD_BY_ALIAS.get(raw)
        if field is None:
            known = ", ".join(sorted({a for _, a in GRID_FIELDS}))
            raise ConfigError(
                f"unknown grid dimension {raw!r} (choose from {known})")
        fields.append(field)
    value_lists = [list(values) for values in dimensions.values()]
    for field, values in zip(fields, value_lists):
        if not values:
            raise ConfigError(f"grid dimension {field!r} has no values")

    configs: list[LVPConfig] = []
    seen: set[str] = set()
    for combo in itertools.product(*value_lists):
        cell = dict(base or {})
        cell.update(zip(fields, combo))
        name = config_name(cell)
        if name in seen:
            continue
        try:
            config = LVPConfig(name=name, **cell)
        except ConfigError:
            continue  # meaningless corner of the cross product
        seen.add(name)
        configs.append(config)
        if limit is not None and len(configs) >= limit:
            break
    return configs


def parse_grid_spec(spec: str) -> dict[str, list]:
    """Parse the CLI grid syntax into expand_grid dimensions.

    The syntax is ``dim=v1,v2,...;dim=...`` using field names or their
    short aliases, e.g.::

        lvpt=256,1024,4096;bits=1,2;cvu=0,32,128
        predictor=history,stride,fcm;depth=1,4

    Integer fields parse as ints, ``tagged`` as 0/1 booleans, the rest
    as strings.  Raises :class:`~repro.errors.ConfigError` with the
    offending token on malformed input.
    """
    dimensions: dict[str, list] = {}
    for clause in filter(None, (c.strip() for c in spec.split(";"))):
        if "=" not in clause:
            raise ConfigError(
                f"malformed grid clause {clause!r} (expected dim=v1,v2)")
        raw_field, _, raw_values = clause.partition("=")
        field = _FIELD_BY_ALIAS.get(raw_field.strip())
        if field is None:
            known = ", ".join(sorted({a for _, a in GRID_FIELDS}))
            raise ConfigError(
                f"unknown grid dimension {raw_field.strip()!r} "
                f"(choose from {known})")
        values: list = []
        for token in filter(None, (t.strip() for t in raw_values.split(","))):
            if field in _INT_FIELDS or field in _BOOL_FIELDS:
                try:
                    number = int(token)
                except ValueError:
                    raise ConfigError(
                        f"grid dimension {field!r}: {token!r} is not an "
                        f"integer") from None
                values.append(bool(number) if field in _BOOL_FIELDS
                              else number)
            else:
                if field == "predictor" and token not in PREDICTORS:
                    raise ConfigError(
                        f"unknown predictor {token!r} (choose from "
                        f"{', '.join(PREDICTORS)})")
                values.append(token)
        if not values:
            raise ConfigError(f"grid dimension {field!r} has no values")
        dimensions[field] = values
    if not dimensions:
        raise ConfigError(f"empty grid spec {spec!r}")
    return dimensions


def sensitivity_grid() -> list[LVPConfig]:
    """The default paperlike sensitivity grid (>= 100 design points).

    Four sub-grids, concatenated:

    * the history family across LVPT size x depth x LCT size x counter
      bits x CVU capacity (the Table 3/4 and Figure 6 dimensions),
    * computed/context families (stride, fcm, lastn, hybrid) across
      LVPT size x CVU capacity,
    * gshare indexing across GHR width x CVU capacity,
    * the perfect-selection limit study across LVPT size and depth.
    """
    grid: list[LVPConfig] = []
    grid += expand_grid({
        "predictor": ["history"],
        "lvpt_entries": [256, 1024, 4096],
        "history_depth": [1, 4],
        "lct_entries": [256, 1024],
        "lct_bits": [1, 2],
        "cvu_entries": [0, 32, 128],
    })
    grid += expand_grid({
        "predictor": ["stride", "fcm", "lastn", "hybrid"],
        "lvpt_entries": [256, 1024],
        "history_depth": [1, 4],
        "cvu_entries": [32, 128],
    })
    grid += expand_grid({
        "index_mode": ["gshare"],
        "ghr_bits": [4, 8],
        "lvpt_entries": [1024],
        "cvu_entries": [32, 128],
    })
    grid += expand_grid({
        "selection": ["perfect"],
        "history_depth": [16],
        "lvpt_entries": [1024, 4096],
        "lct_entries": [1024],
        "cvu_entries": [128],
    })
    return grid


def grid_from_args(spec: Optional[str],
                   limit: Optional[int] = None) -> list[LVPConfig]:
    """The grid a CLI invocation asked for (default: sensitivity)."""
    if spec:
        configs = expand_grid(parse_grid_spec(spec), limit=limit)
    else:
        configs = sensitivity_grid()
        if limit is not None:
            configs = configs[:limit]
    if not configs:
        raise ConfigError("the requested grid expanded to no valid "
                          "configurations")
    return configs
