"""Stride value prediction (the paper's first future-work item).

The paper closes by proposing "moving beyond history-based prediction
to computed predictions through techniques like value stride
detection".  This module implements that follow-up: a direct-mapped,
untagged table whose entries track the last value, the last observed
stride, and a 2-bit stride-confidence counter.  When the same stride is
seen twice in a row, the predictor computes ``last + stride`` instead
of replaying ``last`` -- catching induction variables, sequential
pointers, and loop-carried address arithmetic that pure history misses.

The predictor is inherently hybrid: it backs off to plain last-value
history whenever stride confidence is low, so it can only help on
loads with genuine arithmetic progressions.
"""

from __future__ import annotations

from repro.isa.program import INSTR_SIZE

_U64 = (1 << 64) - 1


class StridePredictor:
    """Direct-mapped last-value + stride table.

    Interface-compatible with :class:`repro.lvp.lvpt.LVPT` where the
    LVP unit needs it (``predict`` / ``would_be_correct`` / ``update`` /
    ``index_of`` / ``flush``).
    """

    #: Confidence value at and above which the stride is applied.
    CONFIDENT = 2
    _MAX_CONFIDENCE = 3

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._mask = entries - 1
        self._last: list = [None] * entries
        self._stride: list[int] = [0] * entries
        self._confidence: list[int] = [0] * entries

    def index_of(self, pc: int) -> int:
        """Table index for a load at instruction address *pc*."""
        return (pc // INSTR_SIZE) & self._mask

    def predict(self, pc: int):
        """Predicted value for *pc* (None if the entry is cold)."""
        index = self.index_of(pc)
        last = self._last[index]
        if last is None:
            return None
        if self._confidence[index] >= self.CONFIDENT:
            return (last + self._stride[index]) & _U64
        return last

    def would_be_correct(self, pc: int, actual: int) -> bool:
        """Would the prediction for *pc* match *actual*?"""
        return self.predict(pc) == actual

    def update(self, pc: int, actual: int) -> None:
        """Train on the observed value (stride detection + confidence)."""
        index = self.index_of(pc)
        last = self._last[index]
        if last is not None:
            stride = (actual - last) & _U64
            if stride == self._stride[index]:
                if self._confidence[index] < self._MAX_CONFIDENCE:
                    self._confidence[index] += 1
            else:
                self._stride[index] = stride
                self._confidence[index] = 1 if stride else 0
        self._last[index] = actual

    def flush(self) -> None:
        """Clear all entries."""
        self._last = [None] * self.entries
        self._stride = [0] * self.entries
        self._confidence = [0] * self.entries

