"""Branch-history-indexed value prediction (paper future work).

The paper proposes "allowing multiple values per static load in the
prediction table by including branch history bits or other readily
available processor state in the lookup index".  This module implements
that refinement gshare-style: the LVPT index becomes
``(pc >> 2) XOR global-branch-history``, so a load reached along
different control paths trains different entries -- giving each static
load multiple values without any selection oracle.
"""

from __future__ import annotations

from repro.lvp.lvpt import LVPT


class ContextLVPT(LVPT):
    """An LVPT whose index folds in global branch history (gshare).

    The owning LVP unit shifts branch outcomes in via
    :meth:`record_branch`; lookups made between branches all see the
    same history, exactly as a fetch-stage predictor would.
    """

    def __init__(self, entries: int, history_depth: int = 1,
                 selection: str = "mru", tagged: bool = False,
                 ghr_bits: int = 8) -> None:
        super().__init__(entries, history_depth, selection, tagged)
        self.ghr_bits = ghr_bits
        self._ghr_mask = (1 << ghr_bits) - 1
        self.ghr = 0

    def index_of(self, pc: int) -> int:
        """gshare index: pc bits XOR the global history register."""
        return ((pc // 4) ^ self.ghr) & self._mask

    def record_branch(self, taken: bool) -> None:
        """Shift one conditional-branch outcome into the history."""
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self._ghr_mask

    def flush(self) -> None:
        """Clear values and history."""
        super().flush()
        self.ghr = 0
