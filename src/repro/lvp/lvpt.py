"""Load Value Prediction Table (paper Section 3.1).

The LVPT associates a load instruction with the value(s) it previously
loaded.  It is direct-mapped and indexed -- but **not tagged** -- by the
low-order bits of the load instruction address, so both constructive and
destructive interference can occur between loads that map to the same
entry (the paper makes the same choice and notes the same consequence).

Each entry stores up to ``history_depth`` distinct values in MRU order,
replaced LRU.  Prediction policies:

* ``"mru"`` -- predict the most recently seen value (depth-1 behaviour).
* ``"perfect"`` -- the paper's limit-study oracle: the prediction is
  deemed correct if *any* of the stored values matches the actual value.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import INSTR_SIZE


class LVPT:
    """Direct-mapped, untagged load value prediction table."""

    def __init__(self, entries: int, history_depth: int = 1,
                 selection: str = "mru", tagged: bool = False) -> None:
        self.entries = entries
        self.history_depth = history_depth
        self.selection = selection
        self.tagged = tagged
        self._mask = entries - 1
        # Per entry: list of values in MRU-first order (possibly empty).
        self._values: list[list[int]] = [[] for _ in range(entries)]
        self._tags: list[int] = [-1] * entries

    def index_of(self, pc: int) -> int:
        """Table index for a load at instruction address *pc*."""
        return (pc // INSTR_SIZE) & self._mask

    def lookup(self, pc: int) -> list[int]:
        """History values for *pc*, MRU first (empty if none/tag miss)."""
        index = self.index_of(pc)
        if self.tagged and self._tags[index] != pc:
            return []
        return self._values[index]

    def predict(self, pc: int) -> Optional[int]:
        """The value the table would forward for *pc* (None = no value).

        Under perfect selection this returns the MRU value; use
        :meth:`would_be_correct` to apply the oracle.
        """
        history = self.lookup(pc)
        return history[0] if history else None

    def would_be_correct(self, pc: int, actual: int) -> bool:
        """Would a prediction for *pc* match *actual* under the policy?"""
        history = self.lookup(pc)
        if not history:
            return False
        if self.selection == "perfect":
            return actual in history
        return history[0] == actual

    def update(self, pc: int, actual: int) -> None:
        """Record that the load at *pc* retrieved *actual* (LRU update)."""
        index = self.index_of(pc)
        if self.tagged and self._tags[index] != pc:
            self._tags[index] = pc
            self._values[index] = [actual]
            return
        history = self._values[index]
        if history and history[0] == actual:
            return
        try:
            history.remove(actual)
        except ValueError:
            pass
        history.insert(0, actual)
        if len(history) > self.history_depth:
            history.pop()

    def poke(self, index: int, values: list[int]) -> None:
        """Overwrite one entry's history (fault injection / tests).

        Models a soft error in the value table: the entry at *index*
        now holds *values* (truncated to the history depth) regardless
        of what training put there.  The verification comparator, not
        the table, is responsible for safety afterwards.
        """
        self._values[index & self._mask] = \
            [int(v) & 0xFFFFFFFFFFFFFFFF
             for v in values][: self.history_depth]

    def flush(self) -> None:
        """Clear all entries (used between benchmark runs)."""
        self._values = [[] for _ in range(self.entries)]
        self._tags = [-1] * self.entries
