"""LVP unit configurations (paper Table 2).

The paper studies four configurations:

==========  ============  =============  ===========  ========  ===========
Config      LVPT entries  History depth  LCT entries  LCT bits  CVU entries
==========  ============  =============  ===========  ========  ===========
Simple      1024          1              256          2         32
Constant    1024          1              256          1         128
Limit       4096          16 (perfect)   1024         2         128
Perfect     (oracle)      (oracle)       --           --        0
==========  ============  =============  ===========  ========  ===========

For history depth greater than one the paper assumes "a hypothetical
perfect selection mechanism" for picking which of the stored values to
predict; that oracle is the ``selection="perfect"`` policy here.  The
Perfect configuration correctly predicts *all* load values but never
classifies any load as constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Recognised value-predictor families (see repro.lvp.unit.build_predictor).
PREDICTORS = ("history", "stride", "fcm", "lastn", "hybrid")


@dataclass(frozen=True)
class LVPConfig:
    """Parameters of one LVP unit instance.

    ``selection`` chooses among an entry's history values: ``"mru"``
    predicts the most-recently-seen value (the only realistic policy);
    ``"perfect"`` is the paper's oracle that counts a prediction correct
    if *any* stored value matches.
    """

    name: str
    lvpt_entries: int = 1024
    history_depth: int = 1
    selection: str = "mru"
    lct_entries: int = 256
    lct_bits: int = 2
    cvu_entries: int = 32
    perfect: bool = False  # oracle: every load predicted correctly
    lvpt_tagged: bool = False  # ablation: tag LVPT entries with full PC
    #: Value predictor family: "history" (the paper's LVPT), "stride"
    #: (the paper's future-work computed prediction), "fcm" (two-level
    #: context/VHT+VPT), "lastn" (frequency-voted last-N buffer), or
    #: "hybrid" (stride + last-value with a chooser).
    predictor: str = "history"
    #: LVPT index: "pc" (the paper) or "gshare" (future work: fold
    #: global branch history into the lookup index).
    index_mode: str = "pc"
    ghr_bits: int = 8  # history bits for index_mode="gshare"
    #: Optional pollution control (future work): only load PCs in this
    #: set may enter the tables; build one with
    #: :func:`repro.lvp.profile.build_table_filter`.
    profile_filter: object = None  # Optional[frozenset[int]]

    def __post_init__(self) -> None:
        # Every field is validated whether or not the configuration is
        # the Perfect oracle: a perfect unit builds no tables, but a
        # silently-accepted lct_bits=99 or negative cvu_entries would
        # poison grid expansion, serialization, and any later copy made
        # with dataclasses.replace(..., perfect=False).
        if self.lvpt_entries <= 0 or \
                self.lvpt_entries & (self.lvpt_entries - 1):
            raise ConfigError(
                f"{self.name}: lvpt_entries must be a power of two"
            )
        if self.lct_entries <= 0 or \
                self.lct_entries & (self.lct_entries - 1):
            raise ConfigError(
                f"{self.name}: lct_entries must be a power of two"
            )
        if self.history_depth < 1:
            raise ConfigError(f"{self.name}: history_depth must be >= 1")
        if self.selection not in ("mru", "perfect"):
            raise ConfigError(
                f"{self.name}: unknown selection policy "
                f"{self.selection!r}"
            )
        if self.lct_bits not in (1, 2, 3, 4):
            raise ConfigError(f"{self.name}: lct_bits must be 1..4")
        if self.cvu_entries < 0:
            raise ConfigError(f"{self.name}: cvu_entries must be >= 0")
        if self.predictor not in PREDICTORS:
            raise ConfigError(
                f"{self.name}: unknown predictor {self.predictor!r}"
            )
        if self.index_mode not in ("pc", "gshare"):
            raise ConfigError(
                f"{self.name}: unknown index_mode {self.index_mode!r}"
            )
        if self.predictor == "stride" and self.history_depth != 1:
            raise ConfigError(
                f"{self.name}: the stride predictor keeps one value"
            )
        if self.predictor == "hybrid" and self.history_depth != 1:
            raise ConfigError(
                f"{self.name}: the hybrid predictor keeps one value "
                "per component"
            )
        if self.predictor in ("stride", "fcm", "lastn", "hybrid") \
                and self.index_mode != "pc":
            raise ConfigError(
                f"{self.name}: predictor {self.predictor!r} is "
                "PC-indexed only"
            )
        if not 1 <= self.ghr_bits <= 20:
            raise ConfigError(f"{self.name}: ghr_bits must be 1..20")
        if self.profile_filter is not None and \
                not isinstance(self.profile_filter, frozenset):
            raise ConfigError(
                f"{self.name}: profile_filter must be a frozenset"
            )


#: Paper Table 2, row "Simple": buildable within a processor generation.
SIMPLE = LVPConfig(
    name="Simple", lvpt_entries=1024, history_depth=1, selection="mru",
    lct_entries=256, lct_bits=2, cvu_entries=32,
)

#: Paper Table 2, row "Constant": 1-bit LCT biased toward constant
#: identification, with a larger CVU.
CONSTANT = LVPConfig(
    name="Constant", lvpt_entries=1024, history_depth=1, selection="mru",
    lct_entries=256, lct_bits=1, cvu_entries=128,
)

#: Paper Table 2, row "Limit": large tables, 16-deep history with a
#: perfect selection oracle.  Not buildable; a limit study.
LIMIT = LVPConfig(
    name="Limit", lvpt_entries=4096, history_depth=16, selection="perfect",
    lct_entries=1024, lct_bits=2, cvu_entries=128,
)

#: Paper Table 2, row "Perfect": predicts every load correctly, never
#: classifies a load as constant.
PERFECT = LVPConfig(
    name="Perfect", perfect=True, cvu_entries=0,
)

#: The four paper configurations, in Table 2 order.
PAPER_CONFIGS = (SIMPLE, CONSTANT, LIMIT, PERFECT)

#: Future-work configurations (paper Section 7), sized like Simple.
STRIDE = LVPConfig(
    name="Stride", lvpt_entries=1024, predictor="stride",
    lct_entries=256, lct_bits=2, cvu_entries=32,
)
GSHARE = LVPConfig(
    name="Gshare", lvpt_entries=1024, index_mode="gshare", ghr_bits=8,
    lct_entries=256, lct_bits=2, cvu_entries=32,
)
#: gem5VP-style two-level context predictor: a value history table
#: feeding a hashed value prediction table (order = history_depth).
FCM = LVPConfig(
    name="FCM", lvpt_entries=1024, predictor="fcm", history_depth=4,
    lct_entries=256, lct_bits=2, cvu_entries=32,
)
#: Last-N value buffer predicting the most frequent recent value.
LASTN = LVPConfig(
    name="LastN", lvpt_entries=1024, predictor="lastn", history_depth=4,
    lct_entries=256, lct_bits=2, cvu_entries=32,
)
#: Stride + last-value components behind a per-entry chooser.
HYBRID = LVPConfig(
    name="Hybrid", lvpt_entries=1024, predictor="hybrid",
    lct_entries=256, lct_bits=2, cvu_entries=32,
)
EXTENSION_CONFIGS = (STRIDE, GSHARE, FCM, LASTN, HYBRID)

#: The two configurations the paper calls "realistic".
REALISTIC_CONFIGS = (SIMPLE, CONSTANT)


def config_by_name(name: str) -> LVPConfig:
    """Look up a configuration by (case-insensitive) name."""
    for config in PAPER_CONFIGS + EXTENSION_CONFIGS:
        if config.name.lower() == name.lower():
            return config
    raise ConfigError(f"unknown LVP configuration: {name!r}")
