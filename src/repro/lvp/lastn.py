"""Last-N-value prediction with frequency voting.

The gem5VP snippets keep a small circular buffer of the last N values a
load produced and predict from it.  Unlike the paper's LVPT -- whose
history is *deduplicated* and MRU-ordered -- this buffer keeps
duplicates, so it can vote: the predicted value is the one appearing
most often among the last N observations, ties broken toward the most
recent.  A load that usually returns one value but occasionally
glitches to another keeps predicting the common value, where an MRU
table would chase every glitch.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import INSTR_SIZE


class LastNPredictor:
    """Direct-mapped table of last-N-value circular buffers.

    Interface-compatible with :class:`repro.lvp.lvpt.LVPT` where the
    LVP unit needs it (``index_of`` / ``predict`` / ``would_be_correct``
    / ``update`` / ``flush``).  ``depth`` is the buffer length N.
    """

    def __init__(self, entries: int, depth: int = 4) -> None:
        self.entries = entries
        self.depth = max(1, depth)
        self._mask = entries - 1
        # Per entry: the last `depth` observed values, oldest first,
        # duplicates retained.
        self._buffers: list[list[int]] = [[] for _ in range(entries)]

    def index_of(self, pc: int) -> int:
        """Table index for a load at instruction address *pc*."""
        return (pc // INSTR_SIZE) & self._mask

    def predict(self, pc: int) -> Optional[int]:
        """Most frequent buffered value (most recent wins ties)."""
        buffer = self._buffers[self.index_of(pc)]
        if not buffer:
            return None
        counts: dict[int, int] = {}
        for value in buffer:
            counts[value] = counts.get(value, 0) + 1
        best = None
        best_count = 0
        # Scan newest-to-oldest so the first value seen at the winning
        # count is the most recent one.
        for value in reversed(buffer):
            count = counts[value]
            if count > best_count:
                best = value
                best_count = count
        return best

    def would_be_correct(self, pc: int, actual: int) -> bool:
        """Would the prediction for *pc* match *actual*?"""
        return self.predict(pc) == actual

    def update(self, pc: int, actual: int) -> None:
        """Shift the observed value into the buffer (FIFO)."""
        buffer = self._buffers[self.index_of(pc)]
        buffer.append(actual)
        if len(buffer) > self.depth:
            buffer.pop(0)

    def flush(self) -> None:
        """Clear all entries."""
        self._buffers = [[] for _ in range(self.entries)]
