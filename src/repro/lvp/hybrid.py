"""Hybrid stride + last-value prediction with a per-entry chooser.

The paper's future-work section proposes combining history-based and
computed prediction; the stride predictor already backs off to last
value internally, but it *commits* to the stride as soon as confidence
builds, even for loads where plain value locality was doing better.
This hybrid keeps both components and lets a 2-bit chooser arbitrate
per entry, tournament-predictor style: the chooser steps toward
whichever component was correct when exactly one of them was.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.program import INSTR_SIZE

_U64 = (1 << 64) - 1


class HybridPredictor:
    """Stride and last-value components behind a 2-bit chooser.

    Interface-compatible with :class:`repro.lvp.lvpt.LVPT` where the
    LVP unit needs it (``index_of`` / ``predict`` / ``would_be_correct``
    / ``update`` / ``flush``).
    """

    #: Chooser values at and above which the stride component is used.
    _CHOOSE_STRIDE = 2
    _CHOOSER_MAX = 3
    #: Stride-confidence value at and above which a stride is applied.
    _CONFIDENT = 2
    _MAX_CONFIDENCE = 3

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._mask = entries - 1
        self._last: list = [None] * entries
        self._stride: list[int] = [0] * entries
        self._confidence: list[int] = [0] * entries
        # 0..1 favour last-value, 2..3 favour stride; start neutral on
        # the last-value side (the paper's baseline behaviour).
        self._chooser: list[int] = [1] * entries

    def index_of(self, pc: int) -> int:
        """Table index for a load at instruction address *pc*."""
        return (pc // INSTR_SIZE) & self._mask

    def _components(self, index: int) -> tuple[Optional[int], Optional[int]]:
        """(last-value prediction, stride prediction) for one entry."""
        last = self._last[index]
        if last is None:
            return None, None
        if self._confidence[index] >= self._CONFIDENT:
            return last, (last + self._stride[index]) & _U64
        return last, last

    def predict(self, pc: int) -> Optional[int]:
        """Predicted value for *pc* (None if the entry is cold)."""
        index = self.index_of(pc)
        value_pred, stride_pred = self._components(index)
        if value_pred is None:
            return None
        return stride_pred if self._chooser[index] >= self._CHOOSE_STRIDE \
            else value_pred

    def would_be_correct(self, pc: int, actual: int) -> bool:
        """Would the prediction for *pc* match *actual*?"""
        return self.predict(pc) == actual

    def update(self, pc: int, actual: int) -> None:
        """Train both components and the chooser on the observed value."""
        index = self.index_of(pc)
        value_pred, stride_pred = self._components(index)
        if value_pred is not None:
            value_ok = value_pred == actual
            stride_ok = stride_pred == actual
            chooser = self._chooser[index]
            if stride_ok and not value_ok:
                if chooser < self._CHOOSER_MAX:
                    self._chooser[index] = chooser + 1
            elif value_ok and not stride_ok:
                if chooser > 0:
                    self._chooser[index] = chooser - 1
        # Stride component training (same rules as StridePredictor).
        last = self._last[index]
        if last is not None:
            stride = (actual - last) & _U64
            if stride == self._stride[index]:
                if self._confidence[index] < self._MAX_CONFIDENCE:
                    self._confidence[index] += 1
            else:
                self._stride[index] = stride
                self._confidence[index] = 1 if stride else 0
        self._last[index] = actual

    def flush(self) -> None:
        """Clear all entries."""
        self._last = [None] * self.entries
        self._stride = [0] * self.entries
        self._confidence = [0] * self.entries
        self._chooser = [1] * self.entries
