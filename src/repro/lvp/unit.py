"""The Load Value Prediction Unit (paper Section 3.4).

Composes the LVPT, LCT, and CVU and processes a program-order stream of
loads and stores, assigning each dynamic load one of the paper's four
value prediction states: *no prediction*, *incorrect prediction*,
*correct prediction*, or *constant load* (Section 5).  These annotations
are exactly what the paper's microarchitectural simulators consume.

The unit also keeps the bookkeeping needed for the paper's Table 3
(LCT classification accuracy versus ground truth) and Table 4
(fraction of dynamic loads treated as constants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lvp.config import LVPConfig
from repro.lvp.context import ContextLVPT
from repro.lvp.cvu import CVU
from repro.lvp.fcm import FCMPredictor
from repro.lvp.hybrid import HybridPredictor
from repro.lvp.lastn import LastNPredictor
from repro.lvp.lct import LCT, LoadClass
from repro.lvp.lvpt import LVPT
from repro.lvp.stride import StridePredictor


def build_predictor(config: LVPConfig):
    """The value-prediction table a configuration calls for.

    Single point of truth for the predictor-family dispatch: the
    :class:`LVPUnit` constructor and the batched sweep evaluator
    (:mod:`repro.harness.sweep`) both build their tables here, so a
    sweep cell can never evaluate a different structure than the unit
    it must stay bit-identical to.  Perfect (oracle) configurations
    have no table and return None.
    """
    if config.perfect:
        return None
    if config.predictor == "stride":
        return StridePredictor(config.lvpt_entries)
    if config.predictor == "fcm":
        return FCMPredictor(config.lvpt_entries, config.history_depth)
    if config.predictor == "lastn":
        return LastNPredictor(config.lvpt_entries, config.history_depth)
    if config.predictor == "hybrid":
        return HybridPredictor(config.lvpt_entries)
    if config.index_mode == "gshare":
        return ContextLVPT(
            config.lvpt_entries, config.history_depth,
            config.selection, tagged=config.lvpt_tagged,
            ghr_bits=config.ghr_bits)
    return LVPT(config.lvpt_entries, config.history_depth,
                config.selection, tagged=config.lvpt_tagged)


class LoadOutcome(enum.IntEnum):
    """Per-dynamic-load annotation (the paper's four prediction states)."""

    NO_PREDICTION = 0
    INCORRECT = 1
    CORRECT = 2
    CONSTANT = 3  # correct AND verified by the CVU (no cache access)


@dataclass
class LVPStats:
    """Counters accumulated while a unit processes a trace."""

    loads: int = 0
    stores: int = 0
    outcomes: dict[LoadOutcome, int] = field(
        default_factory=lambda: {o: 0 for o in LoadOutcome})
    # Ground truth vs LCT decision (for Table 3): a load is "predictable"
    # if the LVPT's prediction would have matched the actual value.
    predictable_predicted: int = 0  # predictable, LCT said predict/constant
    predictable_not_predicted: int = 0  # predictable, LCT said don't
    unpredictable_predicted: int = 0  # unpredictable, LCT said predict
    unpredictable_not_predicted: int = 0  # unpredictable, LCT said don't
    cvu_insertions: int = 0
    cvu_store_invalidations: int = 0
    cvu_demotions: int = 0  # constant-classified loads that missed the CVU
    cvu_stale_hits: int = 0  # CVU hits whose LVPT value was wrong

    @property
    def constant_fraction(self) -> float:
        """Fraction of dynamic loads treated as constants (Table 4)."""
        if not self.loads:
            return 0.0
        return self.outcomes[LoadOutcome.CONSTANT] / self.loads

    @property
    def unpredictable_identified(self) -> float:
        """Table 3: fraction of unpredictable loads the LCT caught."""
        total = self.unpredictable_predicted + self.unpredictable_not_predicted
        if not total:
            return 1.0
        return self.unpredictable_not_predicted / total

    @property
    def predictable_identified(self) -> float:
        """Table 3: fraction of predictable loads the LCT caught."""
        total = self.predictable_predicted + self.predictable_not_predicted
        if not total:
            return 1.0
        return self.predictable_predicted / total

    @property
    def prediction_accuracy(self) -> float:
        """Correct + constant outcomes over all attempted predictions."""
        attempted = (self.outcomes[LoadOutcome.CORRECT]
                     + self.outcomes[LoadOutcome.CONSTANT]
                     + self.outcomes[LoadOutcome.INCORRECT])
        if not attempted:
            return 0.0
        return (self.outcomes[LoadOutcome.CORRECT]
                + self.outcomes[LoadOutcome.CONSTANT]) / attempted

    def counters(self) -> dict[str, int]:
        """Observability counters (see docs/observability.md).

        LVPT hits/misses use the paper's value-locality sense (would
        the table's prediction have matched?); LCT hits are decisions
        that agreed with that ground truth.
        """
        outcomes = self.outcomes
        return {
            "loads": self.loads,
            "stores": self.stores,
            "lvpt_hits": (self.predictable_predicted
                          + self.predictable_not_predicted),
            "lvpt_misses": (self.unpredictable_predicted
                            + self.unpredictable_not_predicted),
            "lct_hits": (self.predictable_predicted
                         + self.unpredictable_not_predicted),
            "lct_misses": (self.predictable_not_predicted
                           + self.unpredictable_predicted),
            "predicted_correct": outcomes[LoadOutcome.CORRECT],
            "mispredicts": outcomes[LoadOutcome.INCORRECT],
            "no_prediction": outcomes[LoadOutcome.NO_PREDICTION],
            "constant_loads": outcomes[LoadOutcome.CONSTANT],
            "cvu_hits": (outcomes[LoadOutcome.CONSTANT]
                         + self.cvu_stale_hits),
            "cvu_misses": self.cvu_demotions,
            "cvu_insertions": self.cvu_insertions,
            "cvu_store_invalidations": self.cvu_store_invalidations,
            "cvu_stale_hits": self.cvu_stale_hits,
        }


class LVPUnit:
    """A complete LVP unit: LVPT + LCT + CVU, per one configuration.

    With ``audit=True`` the unit records, for every dynamic load, the
    value it would have forwarded alongside the actual value and the
    assigned outcome (``audit_log`` of ``(pc, predicted, actual,
    outcome)`` tuples).  The fault-injection doctor replays these to
    prove the verification comparator never lets a wrong forwarded
    value stand -- even when the tables have been corrupted mid-run.
    """

    def __init__(self, config: LVPConfig, audit: bool = False) -> None:
        self.config = config
        self.stats = LVPStats()
        self.audit_log: list = [] if audit else None
        self.lvpt = build_predictor(config)
        if config.perfect:
            self.lct = None
            self.cvu = None
        else:
            self.lct = LCT(config.lct_entries, config.lct_bits)
            self.cvu = CVU(config.cvu_entries)
        # Cached once: the table type never changes after construction,
        # and process_branch runs once per conditional branch.
        self._needs_branch_stream = isinstance(self.lvpt, ContextLVPT)

    def process_load(self, pc: int, addr: int, value: int) -> LoadOutcome:
        """Process one dynamic load; returns its prediction state."""
        stats = self.stats
        stats.loads += 1

        # Pollution control (future work): filtered-out loads never
        # touch the tables, so they cannot evict useful entries.
        profile_filter = self.config.profile_filter
        if profile_filter is not None and pc not in profile_filter:
            stats.outcomes[LoadOutcome.NO_PREDICTION] += 1
            stats.unpredictable_not_predicted += 1
            if self.audit_log is not None:
                self.audit_log.append(
                    (pc, None, value, LoadOutcome.NO_PREDICTION))
            return LoadOutcome.NO_PREDICTION

        if self.config.perfect:
            outcome = LoadOutcome.CORRECT
            stats.outcomes[outcome] += 1
            stats.predictable_predicted += 1
            if self.audit_log is not None:
                # The oracle forwards the actual value by definition.
                self.audit_log.append((pc, value, value, outcome))
            return outcome

        lvpt = self.lvpt
        lct = self.lct
        would_hit = lvpt.would_be_correct(pc, value)
        # Capture the value the unit would forward *before* training
        # updates the table below.
        predicted = lvpt.predict(pc) if self.audit_log is not None else None
        classification = lct.classify(pc)

        if classification is LoadClass.DONT_PREDICT:
            outcome = LoadOutcome.NO_PREDICTION
            if would_hit:
                stats.predictable_not_predicted += 1
            else:
                stats.unpredictable_not_predicted += 1
        elif classification is LoadClass.PREDICT:
            outcome = LoadOutcome.CORRECT if would_hit \
                else LoadOutcome.INCORRECT
            if would_hit:
                stats.predictable_predicted += 1
            else:
                stats.unpredictable_predicted += 1
        else:  # LoadClass.CONSTANT
            outcome = self._process_constant(pc, addr, value, would_hit)
            if would_hit:
                stats.predictable_predicted += 1
            else:
                stats.unpredictable_predicted += 1

        # Tables are trained on every dynamic load (paper Section 3.2:
        # "incremented when the predicted value is correct").
        lct.update(pc, would_hit)
        lvpt.update(pc, value)
        stats.outcomes[outcome] += 1
        if self.audit_log is not None:
            self.audit_log.append((pc, predicted, value, outcome))
        return outcome

    def _process_constant(self, pc: int, addr: int, value: int,
                          would_hit: bool) -> LoadOutcome:
        """Handle a load the LCT classified as constant."""
        cvu = self.cvu
        # Snapshot the LVPT index once per event: under gshare indexing
        # index_of varies with the global history register, so match,
        # stale-invalidate, and insert must all use this one value.
        lvpt_index = self.lvpt.index_of(pc)
        if cvu.match(addr, lvpt_index):
            if would_hit:
                return LoadOutcome.CONSTANT
            # Destructive LVPT interference replaced the value while the
            # CVU entry stayed valid; the forwarded value is wrong.  The
            # value comparison catches it (modelled as a misprediction)
            # and the stale entry is dropped.
            self.stats.cvu_stale_hits += 1
            cvu.invalidate(addr, lvpt_index)
            return LoadOutcome.INCORRECT
        # CVU miss: demote to ordinary predictable status (verify via the
        # memory hierarchy) and install the pair for next time.  A
        # zero-entry CVU refuses the insert, and that refusal must not
        # count as an insertion.
        self.stats.cvu_demotions += 1
        if cvu.insert(addr, lvpt_index):
            self.stats.cvu_insertions += 1
        return LoadOutcome.CORRECT if would_hit else LoadOutcome.INCORRECT

    @property
    def needs_branch_stream(self) -> bool:
        """True if the unit's tables consume branch outcomes."""
        return self._needs_branch_stream

    def process_branch(self, taken: bool) -> None:
        """Feed one conditional-branch outcome (gshare indexing)."""
        if self._needs_branch_stream:
            self.lvpt.record_branch(taken)

    def process_store(self, addr: int, size: int = 8) -> None:
        """Process one dynamic store (CVU snoop/invalidate)."""
        self.stats.stores += 1
        if self.cvu is not None:
            self.stats.cvu_store_invalidations += \
                self.cvu.snoop_store(addr, size)

    def flush(self) -> None:
        """Clear all table state (not the statistics)."""
        if not self.config.perfect:
            self.lvpt.flush()
            self.lct.flush()
            self.cvu.flush()
