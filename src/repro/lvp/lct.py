"""Load Classification Table (paper Sections 3.2).

A direct-mapped table of n-bit saturating counters indexed by the
low-order bits of the load instruction address.  The counter state maps
to a prediction class:

* **2-bit counter** (states 0-3): ``0,1 = don't predict``, ``2 =
  predict``, ``3 = constant`` -- exactly the paper's assignment.
* **1-bit counter** (states 0-1): ``0 = don't predict``, ``1 =
  constant`` (the paper's Constant configuration).

Counters increment when the predicted value was correct and decrement
otherwise, saturating at both ends.
"""

from __future__ import annotations

import enum

from repro.isa.program import INSTR_SIZE


class LoadClass(enum.IntEnum):
    """Classification the LCT assigns to a load."""

    DONT_PREDICT = 0
    PREDICT = 1
    CONSTANT = 2


class LCT:
    """Direct-mapped table of saturating classification counters."""

    def __init__(self, entries: int, bits: int = 2) -> None:
        self.entries = entries
        self.bits = bits
        self._mask = entries - 1
        self._max = (1 << bits) - 1
        self._counters = [0] * entries

    def index_of(self, pc: int) -> int:
        """Table index for a load at instruction address *pc*."""
        return (pc // INSTR_SIZE) & self._mask

    def counter(self, pc: int) -> int:
        """Raw saturating-counter value for *pc*."""
        return self._counters[self.index_of(pc)]

    def classify(self, pc: int) -> LoadClass:
        """Classification for the load at *pc*."""
        value = self._counters[self.index_of(pc)]
        if self.bits == 1:
            return LoadClass.CONSTANT if value else LoadClass.DONT_PREDICT
        if value == self._max:
            return LoadClass.CONSTANT
        if value == self._max - 1:
            return LoadClass.PREDICT
        return LoadClass.DONT_PREDICT

    def update(self, pc: int, correct: bool) -> None:
        """Step the counter for *pc* up (correct) or down (incorrect)."""
        index = self.index_of(pc)
        value = self._counters[index]
        if correct:
            if value < self._max:
                self._counters[index] = value + 1
        else:
            if value > 0:
                self._counters[index] = value - 1

    def poke(self, index: int, value: int) -> None:
        """Overwrite one counter (fault injection / tests).

        Models a soft error in the classification table; *value* is
        clamped to the counter's saturating range so the table stays
        internally consistent even under injection.
        """
        self._counters[index & self._mask] = max(0, min(self._max,
                                                        int(value)))

    def flush(self) -> None:
        """Reset all counters to the don't-predict state."""
        self._counters = [0] * self.entries
