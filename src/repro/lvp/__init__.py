"""The Load Value Prediction unit and its components.

* :class:`~repro.lvp.lvpt.LVPT` -- load value prediction table,
* :class:`~repro.lvp.lct.LCT` -- load classification table,
* :class:`~repro.lvp.cvu.CVU` -- constant verification unit,
* :class:`~repro.lvp.unit.LVPUnit` -- the composed unit,
* Table-2 configurations in :mod:`repro.lvp.config`,
* value-locality measurement in :mod:`repro.lvp.locality`.
"""

from repro.lvp.config import (
    CONSTANT,
    EXTENSION_CONFIGS,
    FCM,
    GSHARE,
    HYBRID,
    LASTN,
    LIMIT,
    LVPConfig,
    PAPER_CONFIGS,
    PERFECT,
    PREDICTORS,
    REALISTIC_CONFIGS,
    SIMPLE,
    STRIDE,
    config_by_name,
)
from repro.lvp.context import ContextLVPT
from repro.lvp.fcm import FCMPredictor
from repro.lvp.grid import (
    expand_grid,
    grid_from_args,
    parse_grid_spec,
    sensitivity_grid,
)
from repro.lvp.hybrid import HybridPredictor
from repro.lvp.lastn import LastNPredictor
from repro.lvp.general import (
    GeneralLocalityResult,
    measure_general_value_locality,
)
from repro.lvp.profile import (
    LoadProfile,
    build_table_filter,
    profile_loads,
)
from repro.lvp.stride import StridePredictor
from repro.lvp.cvu import CVU
from repro.lvp.lct import LCT, LoadClass
from repro.lvp.locality import (
    LocalityResult,
    measure_locality_by_kind,
    measure_value_locality,
)
from repro.lvp.lvpt import LVPT
from repro.lvp.unit import LoadOutcome, LVPStats, LVPUnit, build_predictor

__all__ = [
    "CONSTANT", "EXTENSION_CONFIGS", "FCM", "GSHARE", "HYBRID", "LASTN",
    "LIMIT", "LVPConfig", "PAPER_CONFIGS", "PERFECT", "PREDICTORS",
    "REALISTIC_CONFIGS", "SIMPLE", "STRIDE",
    "config_by_name", "ContextLVPT", "StridePredictor",
    "FCMPredictor", "HybridPredictor", "LastNPredictor",
    "expand_grid", "grid_from_args", "parse_grid_spec",
    "sensitivity_grid", "build_predictor",
    "GeneralLocalityResult", "measure_general_value_locality",
    "LoadProfile", "build_table_filter", "profile_loads",
    "CVU", "LCT", "LoadClass", "LVPT",
    "LoadOutcome", "LVPStats", "LVPUnit",
    "LocalityResult", "measure_locality_by_kind", "measure_value_locality",
]
