"""The Load Value Prediction unit and its components.

* :class:`~repro.lvp.lvpt.LVPT` -- load value prediction table,
* :class:`~repro.lvp.lct.LCT` -- load classification table,
* :class:`~repro.lvp.cvu.CVU` -- constant verification unit,
* :class:`~repro.lvp.unit.LVPUnit` -- the composed unit,
* Table-2 configurations in :mod:`repro.lvp.config`,
* value-locality measurement in :mod:`repro.lvp.locality`.
"""

from repro.lvp.config import (
    CONSTANT,
    EXTENSION_CONFIGS,
    GSHARE,
    LIMIT,
    LVPConfig,
    PAPER_CONFIGS,
    PERFECT,
    REALISTIC_CONFIGS,
    SIMPLE,
    STRIDE,
    config_by_name,
)
from repro.lvp.context import ContextLVPT
from repro.lvp.general import (
    GeneralLocalityResult,
    measure_general_value_locality,
)
from repro.lvp.profile import (
    LoadProfile,
    build_table_filter,
    profile_loads,
)
from repro.lvp.stride import StridePredictor
from repro.lvp.cvu import CVU
from repro.lvp.lct import LCT, LoadClass
from repro.lvp.locality import (
    LocalityResult,
    measure_locality_by_kind,
    measure_value_locality,
)
from repro.lvp.lvpt import LVPT
from repro.lvp.unit import LoadOutcome, LVPStats, LVPUnit

__all__ = [
    "CONSTANT", "EXTENSION_CONFIGS", "GSHARE", "LIMIT", "LVPConfig",
    "PAPER_CONFIGS", "PERFECT", "REALISTIC_CONFIGS", "SIMPLE", "STRIDE",
    "config_by_name", "ContextLVPT", "StridePredictor",
    "GeneralLocalityResult", "measure_general_value_locality",
    "LoadProfile", "build_table_filter", "profile_loads",
    "CVU", "LCT", "LoadClass", "LVPT",
    "LoadOutcome", "LVPStats", "LVPUnit",
    "LocalityResult", "measure_locality_by_kind", "measure_value_locality",
]
