"""Profile-guided value-table pollution control (paper future work).

The paper proposes that the classification mechanism "could also be
...extended to control pollution in the value table (e.g. removing
loads that are not latency-critical from the table)".  This module
implements the profiling side: a pass over a training trace computes,
per static load, its dynamic weight and last-value predictability, and
derives a *filter* -- the set of load PCs worth table space.  An
:class:`~repro.lvp.unit.LVPUnit` configured with the filter excludes
everything else from its tables entirely, so unpredictable loads can no
longer evict useful entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.records import Trace


@dataclass(frozen=True)
class LoadProfile:
    """Profile of one static load."""

    pc: int
    dynamic_count: int
    hits: int  # last-value matches

    @property
    def predictability(self) -> float:
        """Fraction of executions whose value repeated the previous one."""
        if not self.dynamic_count:
            return 0.0
        return self.hits / self.dynamic_count


def profile_loads(trace: Trace) -> dict[int, LoadProfile]:
    """Per-static-load last-value predictability over *trace*.

    Unlike the table-based locality measurement, profiling is exact
    per PC (no interference): it is an offline feedback pass, not a
    hardware model.
    """
    counts: dict[int, int] = {}
    hits: dict[int, int] = {}
    last: dict[int, int] = {}
    loads = trace.loads()
    pcs = loads.pc.tolist()
    values = loads.value.tolist()
    for pc, value in zip(pcs, values):
        counts[pc] = counts.get(pc, 0) + 1
        if last.get(pc) == value:
            hits[pc] = hits.get(pc, 0) + 1
        last[pc] = value
    return {
        pc: LoadProfile(pc, counts[pc], hits.get(pc, 0))
        for pc in counts
    }


def build_table_filter(trace: Trace, min_predictability: float = 0.4,
                       min_count: int = 4) -> frozenset:
    """Derive the set of load PCs worth LVPT space.

    Loads below *min_predictability* (or executed fewer than
    *min_count* times in the training trace) are excluded: they would
    mostly pollute the table.  Cold loads absent from the training
    trace are excluded too -- the conservative choice.
    """
    profiles = profile_loads(trace)
    return frozenset(
        pc for pc, profile in profiles.items()
        if profile.dynamic_count >= min_count
        and profile.predictability >= min_predictability
    )
