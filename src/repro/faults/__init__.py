"""Deterministic fault injection and the self-test doctor.

This package exists to *prove* the repository's robustness claims
rather than assume them:

* :mod:`repro.faults.plan` -- seedable campaign plans
  (:class:`FaultPlan` / :class:`FaultSpec`);
* :mod:`repro.faults.inject` -- one-fault injectors for trace columns,
  cached bundles, and live LVP units, plus the
  :func:`~repro.faults.inject.audit_violations` safety oracle;
* :mod:`repro.faults.doctor` -- the campaign runner behind
  ``python -m repro doctor``.

See ``docs/resilience.md`` for the fault model and the degradation
semantics the rest of the harness implements.
"""

from repro.faults.doctor import (
    DETECTED,
    DoctorReport,
    ENGINE_CHECKS,
    FaultOutcome,
    JOURNAL_CHECKS,
    RECOVERED,
    SERVE_CHECKS,
    SILENT,
    run_doctor,
)
from repro.faults.inject import (
    audit_violations,
    copy_trace,
    inject_cache_fault,
    inject_tier_fault,
    inject_trace_fault,
    make_lvp_hook,
)
from repro.faults.plan import (
    CACHE_FAULTS,
    FaultPlan,
    FaultSpec,
    LVP_FAULTS,
    TRACE_FAULTS,
)

__all__ = [
    "DETECTED", "ENGINE_CHECKS", "JOURNAL_CHECKS", "RECOVERED",
    "SERVE_CHECKS", "SILENT",
    "DoctorReport", "FaultOutcome", "run_doctor",
    "audit_violations", "copy_trace",
    "inject_cache_fault", "inject_tier_fault", "inject_trace_fault",
    "make_lvp_hook",
    "CACHE_FAULTS", "FaultPlan", "FaultSpec", "LVP_FAULTS",
    "TRACE_FAULTS",
]
