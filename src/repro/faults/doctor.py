"""The fault-injection self-test campaign (``python -m repro doctor``).

The paper's central correctness argument is that load value prediction
is *speculative but safe*: every misprediction is caught by the
verification comparator or the CVU, so a wrong table entry can cost
cycles but never correctness.  The doctor turns that claim into a
tested property.  It plants a deterministic campaign of faults across
three layers -- in-memory trace columns, on-disk cache bundles, and
live LVP unit tables -- and asserts that every single one is either

* **detected** (``validate_trace`` flags the trace, or the cache's
  checksums reject and quarantine the bundle), or
* **recovered** (annotation completes and the audit log proves no
  wrong forwarded value was ever marked correct).

Any fault that is neither is **silent** -- the one outcome the design
must never produce -- and fails the campaign.

A fourth layer of deterministic **journal** self-tests (not drawn from
the seeded fault plan, so existing campaign seeds are unchanged)
exercises the crash-safety machinery: a write-replay round trip over
the run journal, tolerance of a truncated trailing line, rejection of
an interior tampered line, rejection of a checkpoint whose digest
disagrees with its ``done`` record, the per-unit watchdog, and the
retry backoff schedule's determinism and bounds.

A fifth layer of **engines** self-tests (also outside the seeded
plan) covers the tiered execution engines: each fast tier -- the
compiled simulator, the monomorphic and vectorized annotate kernels,
the fast timing loop -- re-runs one workload against its oracle tier
and must agree field for field, and a forced-demotion drill
(``REPRO_TIER_FAULT``)
proves the divergence sentinel detects a corrupted fast tier, demotes
it, and serves the oracle's answer.

A sixth layer of **serve** self-tests covers the long-lived service's
control plane entirely in-process (the scheduler is runner-agnostic by
design, so no daemon or socket is needed): protocol frame round-trip
and damaged-frame rejection, admission shed past the queue limit,
request coalescing, the scheduler-side deadline backstop, the circuit
breaker's open/reject cycle, and the drain gate.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Optional

from repro.faults import inject
from repro.faults.plan import FaultPlan, FaultSpec
from repro.harness.cache import TraceCache
from repro.lvp.config import CONSTANT, SIMPLE
from repro.trace.annotate import annotate_trace
from repro.trace.records import TRACE_COLUMNS, Trace
from repro.trace.validate import validate_trace

#: Campaign outcome classifications.
DETECTED = "detected"
RECOVERED = "recovered"
SILENT = "silent"

#: The journal-layer self-tests run_doctor appends to every campaign.
JOURNAL_CHECKS = ("replay", "truncation", "tamper", "checkpoint",
                  "watchdog", "backoff")

#: The engines-layer self-tests (tier agreement + forced demotion).
ENGINE_CHECKS = ("trace_tier", "annotate_tier", "annotate_vector",
                 "model_tier", "forced_demotion")

#: The serve-layer self-tests (service control plane, in-process).
SERVE_CHECKS = ("protocol", "admission", "coalesce", "deadline",
                "breaker", "drain")


@dataclass
class FaultOutcome:
    """One executed fault and how the system handled it."""

    spec: FaultSpec
    status: str  #: DETECTED / RECOVERED / SILENT
    detail: str


@dataclass
class DoctorReport:
    """Aggregated result of one doctor campaign."""

    seed: int
    benchmark: str
    scale: str
    outcomes: list

    @property
    def silent(self) -> list:
        """The faults nothing caught (must be empty)."""
        return [o for o in self.outcomes if o.status == SILENT]

    @property
    def ok(self) -> bool:
        return not self.silent

    def counts(self) -> dict:
        """``{layer: {status: count}}`` over all outcomes."""
        table: dict = {}
        for outcome in self.outcomes:
            row = table.setdefault(outcome.spec.layer,
                                   {DETECTED: 0, RECOVERED: 0, SILENT: 0})
            row[outcome.status] += 1
        return table

    def render(self) -> str:
        """Human-readable campaign report."""
        injected = sum(1 for o in self.outcomes
                       if o.spec.layer not in ("journal", "engines",
                                               "serve"))
        checks = len(self.outcomes) - injected
        lines = [
            "Fault-injection doctor",
            "======================",
            f"seed {self.seed} · {injected} faults + {checks} "
            f"self-checks · benchmark {self.benchmark} @ {self.scale}",
            "",
            f"{'layer':8s} {'injected':>8s} {'detected':>9s} "
            f"{'recovered':>10s} {'SILENT':>7s}",
        ]
        counts = self.counts()
        totals = {DETECTED: 0, RECOVERED: 0, SILENT: 0}
        for layer in ("trace", "cache", "lvp", "journal", "engines",
                      "serve"):
            row = counts.get(layer)
            if row is None:
                continue
            injected = sum(row.values())
            lines.append(
                f"{layer:8s} {injected:8d} {row[DETECTED]:9d} "
                f"{row[RECOVERED]:10d} {row[SILENT]:7d}")
            for status in totals:
                totals[status] += row[status]
        lines.append(
            f"{'total':8s} {len(self.outcomes):8d} {totals[DETECTED]:9d} "
            f"{totals[RECOVERED]:10d} {totals[SILENT]:7d}")
        lines.append("")
        if self.ok:
            lines.append("verdict: OK — every fault was detected or "
                         "safely recovered")
        else:
            lines.append(f"verdict: FAIL — {len(self.silent)} silent "
                         "corruption(s):")
            for outcome in self.silent:
                lines.append(f"  !! [{outcome.spec.layer}/"
                             f"{outcome.spec.kind} seed="
                             f"{outcome.spec.seed}] {outcome.detail}")
        return "\n".join(lines)


def _columns_equal(a: Trace, b: Trace) -> bool:
    return len(a) == len(b) and all(
        (getattr(a, key) == getattr(b, key)).all()
        for key, _ in TRACE_COLUMNS
    )


def _run_trace_fault(spec: FaultSpec, trace: Trace) -> FaultOutcome:
    corrupt, expect_detected, what = inject.inject_trace_fault(
        trace, spec.kind, spec.rng())
    problems = validate_trace(corrupt)
    if expect_detected:
        if problems:
            return FaultOutcome(spec, DETECTED,
                                f"{what}; flagged: {problems[0]}")
        return FaultOutcome(spec, SILENT,
                            f"{what}; validate_trace saw nothing")
    # Well-formed corruption (a value flip): the trace must still
    # validate, and annotation must absorb it via the misprediction
    # path without ever letting a wrong forward stand.
    if problems:
        return FaultOutcome(spec, DETECTED,
                            f"{what}; flagged: {problems[0]}")
    annotated = annotate_trace(corrupt, SIMPLE, audit=True)
    violations = inject.audit_violations(annotated)
    if violations:
        return FaultOutcome(spec, SILENT, f"{what}; {violations[0]}")
    return FaultOutcome(spec, RECOVERED,
                        f"{what}; absorbed by the misprediction path")


def _run_cache_fault(spec: FaultSpec, trace: Trace, cache: TraceCache,
                     scale: str) -> FaultOutcome:
    what = inject.inject_cache_fault(cache, trace, scale, spec.kind,
                                     spec.rng())
    loaded = cache.load(trace.name, trace.target, scale)
    if loaded is None:
        return FaultOutcome(spec, DETECTED, f"{what}; treated as a miss")
    if _columns_equal(loaded, trace):
        return FaultOutcome(spec, RECOVERED,
                            f"{what}; bundle survived intact")
    return FaultOutcome(spec, SILENT,
                        f"{what}; a corrupted trace was served")


def _run_lvp_fault(spec: FaultSpec, trace: Trace) -> FaultOutcome:
    rng = spec.rng()
    config = rng.choice((SIMPLE, CONSTANT))
    n_events = int((trace.is_load | trace.is_store).sum())
    hook, what = inject.make_lvp_hook(spec.kind, rng, n_events)
    annotated = annotate_trace(trace, config, audit=True, fault_hook=hook)
    violations = inject.audit_violations(annotated)
    if violations:
        return FaultOutcome(spec, SILENT,
                            f"{what} ({config.name}); {violations[0]}")
    return FaultOutcome(spec, RECOVERED,
                        f"{what} ({config.name}); comparator held")


def _journal_self_tests() -> list[FaultOutcome]:
    """Deterministic drills over the crash-safety machinery.

    Each drill plants a specific kind of damage (or demand) and checks
    the journal/watchdog/backoff layer responds the designed way;
    anything else is reported SILENT and fails the campaign.
    """
    import time as time_mod

    from repro.errors import JournalError, UnitTimeoutError
    from repro.harness.journal import RunJournal, replay_journal
    from repro.harness.parallel import WorkUnit, _ShardResult, _unit_watchdog
    from repro.harness.retry import RetryPolicy

    outcomes: list[FaultOutcome] = []

    def record(kind: str, status: str, detail: str) -> None:
        outcomes.append(
            FaultOutcome(FaultSpec("journal", kind, 0), status, detail))

    with tempfile.TemporaryDirectory(prefix="repro-doctor-journal-") as tmp:
        journal = RunJournal.create(tmp, "selftest", {
            "version": "selftest", "exhibits": [], "scale": "tiny",
            "benchmarks": ["b1", "b2"], "verify": True,
        })
        journal.append({"type": "done", "benchmark": "b1",
                        "checkpoint": "0" * 64, "digests": {}})
        journal.close()
        path = journal.journal_path

        # 1. Write-replay round trip: every appended record comes back,
        # in order, CRC-verified.
        types = [r["type"] for r in replay_journal(path)]
        if types == ["run_started", "planned", "planned", "done"]:
            record("replay", RECOVERED, "write-replay round trip held")
        else:
            record("replay", SILENT,
                   f"replay returned {types!r}, not the written sequence")

        # 2. A truncated trailing line (crash mid-append) is dropped.
        whole = path.read_bytes()
        path.write_bytes(whole + b'{"rec":{"type":"done","benchm')
        truncated = [r["type"] for r in replay_journal(path)]
        if truncated == types:
            record("truncation", DETECTED,
                   "truncated trailing line dropped on replay")
        else:
            record("truncation", SILENT,
                   "a truncated trailing line leaked into replay")

        # 3. An interior tampered line refuses to replay at all.
        lines = whole.split(b"\n")
        lines[1] = lines[1].replace(b"planned", b"plonned")
        path.write_bytes(b"\n".join(lines))
        try:
            replay_journal(path)
        except JournalError:
            record("tamper", DETECTED,
                   "interior damage raised JournalError")
        else:
            record("tamper", SILENT,
                   "an interior tampered line replayed without complaint")

        # 4. A checkpoint whose bytes disagree with the journal's digest
        # is dropped (that benchmark re-runs).
        path.write_bytes(whole)
        empty = _ShardResult(benchmark="b1", traces={}, annotated={},
                             ppc_runs={}, alpha_runs={}, failed={},
                             timings=[])
        journal._write_checkpoint(empty)  # digest != the "0"*64 on record
        if journal.load_checkpoints() == {}:
            record("checkpoint", DETECTED,
                   "digest-mismatching checkpoint dropped")
        else:
            record("checkpoint", SILENT,
                   "a checkpoint was loaded against a wrong digest")

    # 5. The per-unit watchdog interrupts a wedged unit.
    unit = WorkUnit("b1", "trace", "ppc")
    try:
        with _unit_watchdog(0.05, unit):
            time_mod.sleep(2.0)
    except UnitTimeoutError:
        record("watchdog", DETECTED, "watchdog interrupted a 2s hang")
    else:
        record("watchdog", RECOVERED,
               "watchdog disarmed on this platform/thread (documented)")

    # 6. The backoff schedule is deterministic, bounded, and growing.
    policy = RetryPolicy(attempts=5, base=0.1, seed=7)
    first, second = policy.delays(), policy.delays()
    bound = policy.cap * (1.0 + policy.jitter)
    if (first == second and len(first) == 4
            and all(0.0 <= d <= bound for d in first)
            and first[0] < bound):
        record("backoff", RECOVERED,
               "backoff schedule deterministic and bounded")
    else:
        record("backoff", SILENT,
               f"backoff schedule unsound: {first!r} vs {second!r}")
    return outcomes


def _engine_self_tests(trace: Trace, benchmark: str,
                       scale: str) -> list[FaultOutcome]:
    """Deterministic drills over the tiered execution engines.

    Three tier-agreement checks run one workload on a fast tier and
    its oracle and compare field for field (any disagreement here is
    exactly the silent corruption the divergence sentinel exists to
    catch, so it is reported SILENT).  The forced-demotion drill then
    plants ``REPRO_TIER_FAULT`` and proves the sentinel detects the
    corruption, demotes the unit, and serves the oracle's answer.
    """
    import os

    from repro.harness import guard
    from repro.sim.functional import run_program
    from repro.uarch.ppc620.config import PPC620
    from repro.uarch.ppc620.model import PPC620Model
    from repro.workloads.suite import get_benchmark

    outcomes: list[FaultOutcome] = []

    def record(kind: str, status: str, detail: str) -> None:
        outcomes.append(
            FaultOutcome(FaultSpec("engines", kind, 0), status, detail))

    def check(kind: str, what: str, differences: list) -> None:
        if differences:
            record(kind, SILENT, f"{what}; {differences[0]}")
        else:
            record(kind, RECOVERED, f"{what}; tiers agree")

    # These drills measure the unpinned tiers against each other, so
    # any inherited tier/sentinel knobs must not leak in (and the
    # forced-demotion drill sets its own).
    knobs = ("REPRO_ENGINE", "REPRO_ANNOTATE_KERNEL", "REPRO_MODEL_ENGINE",
             "REPRO_TIER_FAULT", "REPRO_SENTINEL_RATE", "REPRO_TRACE_CACHE")
    saved = {key: os.environ.pop(key, None) for key in knobs}
    try:
        bench = get_benchmark(benchmark)

        def execute(engine: str):
            return run_program(bench.build_program("ppc", scale),
                               name=benchmark, target="ppc", engine=engine)

        check("trace_tier", "compiled vs interp",
              guard.diff_executions(execute("compiled"), execute("interp")))
        check("annotate_tier", "mono vs general (Simple)",
              guard.diff_annotations(
                  annotate_trace(trace, SIMPLE, kernel="mono"),
                  annotate_trace(trace, SIMPLE, kernel="general")))
        check("annotate_vector", "vector vs general (Simple)",
              guard.diff_annotations(
                  annotate_trace(trace, SIMPLE, kernel="vector"),
                  annotate_trace(trace, SIMPLE, kernel="general")))
        annotated = annotate_trace(trace, SIMPLE)
        check("model_tier", "fast vs reference (PPC 620)",
              guard.diff_model_results(
                  PPC620Model(PPC620).run(annotated, engine="fast"),
                  PPC620Model(PPC620).run(annotated, engine="reference")))

        os.environ[guard.TIER_FAULT_ENV] = f"{benchmark}:trace"
        from repro.harness.session import Session
        session = Session(scale=scale, benchmarks=(benchmark,),
                          verify=False)
        demoted = session.trace(benchmark, "ppc")
        oracle = execute("interp").trace
        if session.demotions and _columns_equal(demoted, oracle):
            record("forced_demotion", DETECTED,
                   "planted divergence caught; unit demoted to the "
                   "oracle's exact answer")
        elif session.demotions:
            record("forced_demotion", SILENT,
                   "unit demoted but served a non-oracle trace")
        else:
            record("forced_demotion", SILENT,
                   "planted fast-tier corruption sailed past the sentinel")
    except Exception as exc:  # a crashed drill is itself a failure
        record("crashed", SILENT,
               f"engine drill raised {type(exc).__name__}: {exc}")
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return outcomes


def _serve_self_tests() -> list[FaultOutcome]:
    """Deterministic drills over the service control plane.

    The scheduler is runner-agnostic, so every robustness path --
    coalescing, admission shed, the deadline backstop, the circuit
    breaker, the drain gate -- runs here in-process against stub
    runners, with no daemon, socket, or simulation behind it.
    """
    import asyncio

    from repro.errors import (
        CircuitOpenError,
        DeadlineExceededError,
        ProtocolError,
        ServiceOverloadError,
    )
    from repro.serve import protocol
    from repro.serve.scheduler import Scheduler

    outcomes: list[FaultOutcome] = []

    def record(kind: str, status: str, detail: str) -> None:
        outcomes.append(
            FaultOutcome(FaultSpec("serve", kind, 0), status, detail))

    # 1. Protocol: a frame survives an encode/decode/validate round
    # trip, and damaged frames are rejected before they reach the
    # scheduler.
    try:
        request = protocol.make_request(
            "trace", {"bench": "grep", "scale": "tiny"},
            request_id="doctor-1", deadline_s=5.0)
        round_trip = protocol.validate_request(
            protocol.decode_frame(protocol.encode_frame(request)))
        damaged = (
            b"not json at all\n",
            b"[1, 2, 3]\n",
            protocol.encode_frame({"proto": "repro.serve/v0",
                                   "op": "trace", "params": {}}),
            protocol.encode_frame({"proto": protocol.PROTOCOL_ID,
                                   "op": "nonsense", "params": {}}),
        )
        rejected = 0
        for frame in damaged:
            try:
                protocol.validate_request(protocol.decode_frame(frame))
            except ProtocolError:
                rejected += 1
        if round_trip == request and rejected == len(damaged):
            record("protocol", DETECTED,
                   f"frame round trip held; {rejected}/{len(damaged)} "
                   "damaged frames rejected")
        else:
            record("protocol", SILENT,
                   f"only {rejected}/{len(damaged)} damaged frames "
                   "rejected" if round_trip == request
                   else "a frame did not survive its own round trip")
    except Exception as exc:
        record("protocol", SILENT,
               f"protocol drill raised {type(exc).__name__}: {exc}")

    # 2-6. Scheduler drills, each an async coroutine returning
    # (status, detail); a crash is itself a SILENT failure.
    async def admission() -> tuple[str, str]:
        release = asyncio.Event()

        async def runner(op, params, deadline_s):
            await release.wait()
            return "ok"

        sched = Scheduler(runner, workers=1, queue_limit=1)
        first = asyncio.ensure_future(sched.submit("trace", {"n": 1}))
        await asyncio.sleep(0.01)  # occupies the only worker
        second = asyncio.ensure_future(sched.submit("trace", {"n": 2}))
        await asyncio.sleep(0.01)  # fills the one-deep queue
        try:
            await sched.submit("trace", {"n": 3})
            verdict = (SILENT, "a request past the high-water mark "
                               "was admitted instead of shed")
        except ServiceOverloadError as exc:
            hint = getattr(exc, "retry_after_s", 0.0)
            verdict = (DETECTED,
                       f"queue-limit breach shed with a "
                       f"{hint:g}s retry hint") if hint > 0 else \
                      (SILENT, "shed response carried no retry hint")
        release.set()
        await asyncio.gather(first, second)
        return verdict

    async def coalesce() -> tuple[str, str]:
        calls = 0

        async def runner(op, params, deadline_s):
            nonlocal calls
            calls += 1
            await asyncio.sleep(0.02)
            return "shared"

        sched = Scheduler(runner, workers=2)
        pairs = await asyncio.gather(*[
            sched.submit("trace", {"bench": "grep"}) for _ in range(6)])
        shared = sum(1 for _r, meta in pairs if meta["coalesced"])
        if calls == 1 and shared == 5 \
                and all(result == "shared" for result, _m in pairs):
            return (RECOVERED,
                    "6 identical requests shared one execution")
        return (SILENT,
                f"coalescing leaked: {calls} executions, "
                f"{shared} coalesced metas")

    async def deadline() -> tuple[str, str]:
        async def runner(op, params, deadline_s):
            await asyncio.sleep(30.0)

        sched = Scheduler(runner, deadline_grace=0.0)
        try:
            await sched.submit("trace", {"bench": "grep"},
                               deadline_s=0.05)
        except DeadlineExceededError:
            if sched.stats.deadline_expired == 1:
                return (DETECTED,
                        "backstop expired a 0.05s deadline on a "
                        "30s-wedged runner")
            return (SILENT, "deadline raised but was not counted")
        return (SILENT, "a 0.05s deadline never expired")

    async def breaker() -> tuple[str, str]:
        async def runner(op, params, deadline_s):
            raise ValueError("planted persistent failure")

        sched = Scheduler(runner, breaker_threshold=2,
                          breaker_cooldown=60.0)
        for n in range(2):
            try:
                await sched.submit("annotate", {"bench": "grep", "n": n})
                return (SILENT, "a planted failure did not propagate")
            except ValueError:
                pass
        try:
            await sched.submit("annotate", {"bench": "grep", "n": 2})
        except CircuitOpenError:
            if sched.stats.circuit_rejections == 1:
                return (DETECTED,
                        "circuit opened after 2 failures and "
                        "rejected the third request")
            return (SILENT, "circuit rejected but was not counted")
        except ValueError:
            return (SILENT,
                    "third failure ran; the circuit never opened")
        return (SILENT, "third request succeeded unexpectedly")

    async def drain() -> tuple[str, str]:
        async def runner(op, params, deadline_s):
            return "done"

        sched = Scheduler(runner)
        await sched.submit("trace", {"bench": "grep"})
        sched.draining = True
        try:
            await sched.submit("trace", {"bench": "compress"})
            return (SILENT, "a draining scheduler admitted new work")
        except ServiceOverloadError:
            pass
        # Already-computed answers stay servable while draining.
        _result, meta = await sched.submit("trace", {"bench": "grep"})
        if meta["cached"] and await sched.wait_idle(1.0):
            return (DETECTED,
                    "drain gate shed new work; cached result still "
                    "served; queue went idle")
        return (SILENT, "drain gate held but the cached result or "
                        "idle wait misbehaved")

    for kind, drill in (("admission", admission), ("coalesce", coalesce),
                        ("deadline", deadline), ("breaker", breaker),
                        ("drain", drain)):
        try:
            status, detail = asyncio.run(drill())
        except Exception as exc:
            status, detail = SILENT, (f"{kind} drill raised "
                                      f"{type(exc).__name__}: {exc}")
        record(kind, status, detail)
    return outcomes


def run_doctor(seed: int = 0, faults: int = 60,
               benchmark: str = "grep", scale: str = "tiny",
               trace: Optional[Trace] = None) -> DoctorReport:
    """Run a fault campaign; returns the report (never raises on
    silent corruption -- inspect ``report.ok``).

    Pass *trace* to reuse an already-generated trace (tests do);
    otherwise a fresh verifying session traces *benchmark* at *scale*.
    """
    if trace is None:
        from repro.harness.session import Session
        session = Session(scale=scale, benchmarks=(benchmark,))
        trace = session.trace(benchmark, "ppc")
    plan = FaultPlan(seed, faults)
    outcomes = []
    with tempfile.TemporaryDirectory(prefix="repro-doctor-") as tmp:
        cache = TraceCache(tmp)
        for spec in plan:
            if spec.layer == "trace":
                outcomes.append(_run_trace_fault(spec, trace))
            elif spec.layer == "cache":
                outcomes.append(_run_cache_fault(spec, trace, cache, scale))
            else:
                outcomes.append(_run_lvp_fault(spec, trace))
    outcomes.extend(_journal_self_tests())
    outcomes.extend(_engine_self_tests(trace, benchmark, scale))
    outcomes.extend(_serve_self_tests())
    return DoctorReport(seed, trace.name or benchmark, scale, outcomes)
