"""The fault-injection self-test campaign (``python -m repro doctor``).

The paper's central correctness argument is that load value prediction
is *speculative but safe*: every misprediction is caught by the
verification comparator or the CVU, so a wrong table entry can cost
cycles but never correctness.  The doctor turns that claim into a
tested property.  It plants a deterministic campaign of faults across
three layers -- in-memory trace columns, on-disk cache bundles, and
live LVP unit tables -- and asserts that every single one is either

* **detected** (``validate_trace`` flags the trace, or the cache's
  checksums reject and quarantine the bundle), or
* **recovered** (annotation completes and the audit log proves no
  wrong forwarded value was ever marked correct).

Any fault that is neither is **silent** -- the one outcome the design
must never produce -- and fails the campaign.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Optional

from repro.faults import inject
from repro.faults.plan import FaultPlan, FaultSpec
from repro.harness.cache import TraceCache
from repro.lvp.config import CONSTANT, SIMPLE
from repro.trace.annotate import annotate_trace
from repro.trace.records import TRACE_COLUMNS, Trace
from repro.trace.validate import validate_trace

#: Campaign outcome classifications.
DETECTED = "detected"
RECOVERED = "recovered"
SILENT = "silent"


@dataclass
class FaultOutcome:
    """One executed fault and how the system handled it."""

    spec: FaultSpec
    status: str  #: DETECTED / RECOVERED / SILENT
    detail: str


@dataclass
class DoctorReport:
    """Aggregated result of one doctor campaign."""

    seed: int
    benchmark: str
    scale: str
    outcomes: list

    @property
    def silent(self) -> list:
        """The faults nothing caught (must be empty)."""
        return [o for o in self.outcomes if o.status == SILENT]

    @property
    def ok(self) -> bool:
        return not self.silent

    def counts(self) -> dict:
        """``{layer: {status: count}}`` over all outcomes."""
        table: dict = {}
        for outcome in self.outcomes:
            row = table.setdefault(outcome.spec.layer,
                                   {DETECTED: 0, RECOVERED: 0, SILENT: 0})
            row[outcome.status] += 1
        return table

    def render(self) -> str:
        """Human-readable campaign report."""
        lines = [
            "Fault-injection doctor",
            "======================",
            f"seed {self.seed} · {len(self.outcomes)} faults · "
            f"benchmark {self.benchmark} @ {self.scale}",
            "",
            f"{'layer':8s} {'injected':>8s} {'detected':>9s} "
            f"{'recovered':>10s} {'SILENT':>7s}",
        ]
        counts = self.counts()
        totals = {DETECTED: 0, RECOVERED: 0, SILENT: 0}
        for layer in ("trace", "cache", "lvp"):
            row = counts.get(layer)
            if row is None:
                continue
            injected = sum(row.values())
            lines.append(
                f"{layer:8s} {injected:8d} {row[DETECTED]:9d} "
                f"{row[RECOVERED]:10d} {row[SILENT]:7d}")
            for status in totals:
                totals[status] += row[status]
        lines.append(
            f"{'total':8s} {len(self.outcomes):8d} {totals[DETECTED]:9d} "
            f"{totals[RECOVERED]:10d} {totals[SILENT]:7d}")
        lines.append("")
        if self.ok:
            lines.append("verdict: OK — every fault was detected or "
                         "safely recovered")
        else:
            lines.append(f"verdict: FAIL — {len(self.silent)} silent "
                         "corruption(s):")
            for outcome in self.silent:
                lines.append(f"  !! [{outcome.spec.layer}/"
                             f"{outcome.spec.kind} seed="
                             f"{outcome.spec.seed}] {outcome.detail}")
        return "\n".join(lines)


def _columns_equal(a: Trace, b: Trace) -> bool:
    return len(a) == len(b) and all(
        (getattr(a, key) == getattr(b, key)).all()
        for key, _ in TRACE_COLUMNS
    )


def _run_trace_fault(spec: FaultSpec, trace: Trace) -> FaultOutcome:
    corrupt, expect_detected, what = inject.inject_trace_fault(
        trace, spec.kind, spec.rng())
    problems = validate_trace(corrupt)
    if expect_detected:
        if problems:
            return FaultOutcome(spec, DETECTED,
                                f"{what}; flagged: {problems[0]}")
        return FaultOutcome(spec, SILENT,
                            f"{what}; validate_trace saw nothing")
    # Well-formed corruption (a value flip): the trace must still
    # validate, and annotation must absorb it via the misprediction
    # path without ever letting a wrong forward stand.
    if problems:
        return FaultOutcome(spec, DETECTED,
                            f"{what}; flagged: {problems[0]}")
    annotated = annotate_trace(corrupt, SIMPLE, audit=True)
    violations = inject.audit_violations(annotated)
    if violations:
        return FaultOutcome(spec, SILENT, f"{what}; {violations[0]}")
    return FaultOutcome(spec, RECOVERED,
                        f"{what}; absorbed by the misprediction path")


def _run_cache_fault(spec: FaultSpec, trace: Trace, cache: TraceCache,
                     scale: str) -> FaultOutcome:
    what = inject.inject_cache_fault(cache, trace, scale, spec.kind,
                                     spec.rng())
    loaded = cache.load(trace.name, trace.target, scale)
    if loaded is None:
        return FaultOutcome(spec, DETECTED, f"{what}; treated as a miss")
    if _columns_equal(loaded, trace):
        return FaultOutcome(spec, RECOVERED,
                            f"{what}; bundle survived intact")
    return FaultOutcome(spec, SILENT,
                        f"{what}; a corrupted trace was served")


def _run_lvp_fault(spec: FaultSpec, trace: Trace) -> FaultOutcome:
    rng = spec.rng()
    config = rng.choice((SIMPLE, CONSTANT))
    n_events = int((trace.is_load | trace.is_store).sum())
    hook, what = inject.make_lvp_hook(spec.kind, rng, n_events)
    annotated = annotate_trace(trace, config, audit=True, fault_hook=hook)
    violations = inject.audit_violations(annotated)
    if violations:
        return FaultOutcome(spec, SILENT,
                            f"{what} ({config.name}); {violations[0]}")
    return FaultOutcome(spec, RECOVERED,
                        f"{what} ({config.name}); comparator held")


def run_doctor(seed: int = 0, faults: int = 60,
               benchmark: str = "grep", scale: str = "tiny",
               trace: Optional[Trace] = None) -> DoctorReport:
    """Run a fault campaign; returns the report (never raises on
    silent corruption -- inspect ``report.ok``).

    Pass *trace* to reuse an already-generated trace (tests do);
    otherwise a fresh verifying session traces *benchmark* at *scale*.
    """
    if trace is None:
        from repro.harness.session import Session
        session = Session(scale=scale, benchmarks=(benchmark,))
        trace = session.trace(benchmark, "ppc")
    plan = FaultPlan(seed, faults)
    outcomes = []
    with tempfile.TemporaryDirectory(prefix="repro-doctor-") as tmp:
        cache = TraceCache(tmp)
        for spec in plan:
            if spec.layer == "trace":
                outcomes.append(_run_trace_fault(spec, trace))
            elif spec.layer == "cache":
                outcomes.append(_run_cache_fault(spec, trace, cache, scale))
            else:
                outcomes.append(_run_lvp_fault(spec, trace))
    return DoctorReport(seed, trace.name or benchmark, scale, outcomes)
