"""Deterministic fault planning.

A :class:`FaultPlan` expands a single campaign seed into a sequence of
:class:`FaultSpec` entries, cycling through the three injection layers
(in-memory trace columns, on-disk cache bundles, LVP unit tables) and
through every fault kind within each layer.  Two plans built from the
same ``(seed, faults)`` pair are identical, so a failing doctor run is
reproducible from its reported seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultError

#: Trace-layer fault kinds.  All but ``value_flip`` violate a trace
#: invariant and must be caught by ``validate_trace``; ``value_flip``
#: leaves the trace well-formed and must be absorbed by the LVP
#: misprediction path instead.
TRACE_FAULTS: tuple[str, ...] = (
    "opcode_zero", "opcode_overflow", "opclass_mismatch",
    "register_range", "bad_size", "misalign", "taken_flag",
    "pc_unaligned", "truncate_tail", "value_flip",
)

#: Cache-layer fault kinds, applied to a stored ``.npz`` bundle.
CACHE_FAULTS: tuple[str, ...] = (
    "truncate", "bitflip", "garbage", "empty", "version_bump",
    "checksum_mismatch",
)

#: LVP-layer fault kinds, injected into a live unit mid-annotation.
LVP_FAULTS: tuple[str, ...] = (
    "lvpt_poke", "lct_poke", "cvu_bogus", "unit_flush",
)

_LAYERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("trace", TRACE_FAULTS),
    ("cache", CACHE_FAULTS),
    ("lvp", LVP_FAULTS),
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where to inject it and its private seed."""

    layer: str  #: "trace", "cache", or "lvp"
    kind: str  #: one of the layer's *_FAULTS kinds
    seed: int  #: seeds the injector's own RNG

    def rng(self) -> random.Random:
        """A fresh RNG for executing this spec."""
        return random.Random(self.seed)


class FaultPlan:
    """A deterministic campaign of *faults* specs derived from *seed*."""

    def __init__(self, seed: int = 0, faults: int = 60) -> None:
        if faults < 1:
            raise FaultError(f"a fault plan needs >= 1 fault, got {faults}")
        self.seed = seed
        rng = random.Random(seed)
        specs = []
        for i in range(faults):
            layer, kinds = _LAYERS[i % len(_LAYERS)]
            kind = kinds[(i // len(_LAYERS)) % len(kinds)]
            specs.append(FaultSpec(layer, kind, rng.randrange(2 ** 32)))
        self.specs: tuple[FaultSpec, ...] = tuple(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)
