"""Fault injectors for the three layers the doctor exercises.

Each injector plants exactly one fault at a realistic boundary:

* :func:`inject_trace_fault` corrupts a *copy* of an in-memory trace
  (bit flips, out-of-range fields, truncation) the way a bad producer
  or decayed storage would;
* :func:`inject_cache_fault` damages a stored ``.rtc`` bundle on disk
  (truncation, bit flips, garbage, stale versions, checksum lies) --
  bit flips land inside the integrity-covered regions (header, column
  data, footer), never the alignment padding, so every planted fault
  is one the cache's checksum layers are contracted to catch;
* :func:`make_lvp_hook` builds an ``annotate_trace`` fault hook that
  corrupts a live LVP unit's tables mid-annotation (soft errors in the
  LVPT/LCT/CVU).

:func:`audit_violations` is the other half of the contract: given an
audited annotation it returns every way a corrupted unit let a wrong
forwarded value stand.  An empty list means the misprediction path
absorbed the fault.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

import numpy as np

from repro.errors import FaultError
from repro.harness.cache import TraceCache
from repro.isa.opcodes import CONDITIONAL_BRANCHES, Opcode, OpClass
from repro.isa.registers import NUM_REGS
from repro.lvp.unit import LoadOutcome
from repro.trace.annotate import AnnotatedTrace
from repro.trace.records import TRACE_COLUMNS, Trace


def copy_trace(trace: Trace) -> Trace:
    """A deep copy of *trace* safe to corrupt."""
    return Trace(
        {key: getattr(trace, key).copy() for key, _ in TRACE_COLUMNS},
        name=trace.name, target=trace.target,
    )


def _pick(rng: random.Random, positions: np.ndarray, what: str) -> int:
    if len(positions) == 0:
        raise FaultError(f"trace has no {what}; cannot plant this fault")
    return int(positions[rng.randrange(len(positions))])


# ---------------------------------------------------------------------------
# Trace-layer faults.
# ---------------------------------------------------------------------------
def inject_trace_fault(trace: Trace, kind: str,
                       rng: random.Random) -> tuple[Trace, bool, str]:
    """Corrupt a copy of *trace*; returns (copy, expect_detected, what).

    ``expect_detected`` is True when the fault violates a structural
    invariant ``validate_trace`` must flag; False for faults (value
    bit flips) that leave the trace well-formed and must instead be
    absorbed by the LVP misprediction path.
    """
    corrupt = copy_trace(trace)
    loads = np.nonzero(corrupt.is_load)[0]
    any_row = np.arange(len(corrupt))

    if kind == "opcode_zero":
        i = _pick(rng, any_row, "rows")
        corrupt.opcode[i] = 0
        return corrupt, True, f"opcode[{i}] zeroed"
    if kind == "opcode_overflow":
        i = _pick(rng, any_row, "rows")
        corrupt.opcode[i] = len(Opcode) + 1 + rng.randrange(50)
        return corrupt, True, f"opcode[{i}] past the enum"
    if kind == "opclass_mismatch":
        i = _pick(rng, any_row, "rows")
        corrupt.opclass[i] = 250
        return corrupt, True, f"opclass[{i}] mismatched"
    if kind == "register_range":
        i = _pick(rng, any_row, "rows")
        column = getattr(corrupt, rng.choice(("dst", "src1", "src2")))
        column[i] = rng.choice((NUM_REGS + 1 + rng.randrange(100), -2))
        return corrupt, True, f"register id[{i}] out of range"
    if kind == "bad_size":
        i = _pick(rng, loads, "loads")
        corrupt.size[i] = rng.choice((2, 3, 5, 7))
        return corrupt, True, f"size[{i}] implausible"
    if kind == "misalign":
        wide = np.nonzero((corrupt.is_load | corrupt.is_store)
                          & (corrupt.size >= 4))[0]
        i = _pick(rng, wide, "wide memory ops")
        corrupt.addr[i] += rng.choice((1, 2, 3))
        return corrupt, True, f"addr[{i}] misaligned"
    if kind == "taken_flag":
        conditional = np.isin(
            corrupt.opcode, [int(o) for o in CONDITIONAL_BRANCHES])
        i = _pick(rng, np.nonzero(~conditional)[0], "non-branch rows")
        corrupt.taken[i] = 1
        return corrupt, True, f"taken[{i}] set on a non-branch"
    if kind == "pc_unaligned":
        i = _pick(rng, any_row, "rows")
        corrupt.pc[i] += rng.choice((1, 2, 3))
        return corrupt, True, f"pc[{i}] unaligned"
    if kind == "truncate_tail":
        mid_flow = np.nonzero(
            corrupt.opclass != int(OpClass.BRANCH))[0]
        i = _pick(rng, mid_flow, "non-branch rows")
        sliced = Trace(
            {key: getattr(corrupt, key)[: i + 1].copy()
             for key, _ in TRACE_COLUMNS},
            name=corrupt.name, target=corrupt.target,
        )
        return sliced, True, f"trace truncated after row {i}"
    if kind == "value_flip":
        i = _pick(rng, loads, "loads")
        corrupt.value[i] ^= np.uint64(1) << np.uint64(rng.randrange(64))
        return corrupt, False, f"value[{i}] bit-flipped"
    raise FaultError(f"unknown trace fault kind {kind!r}")


# ---------------------------------------------------------------------------
# Tier-layer faults (the divergence-sentinel drill).
# ---------------------------------------------------------------------------
def inject_tier_fault(stage: str, result):
    """Deterministically corrupt one fast-tier *result* in place.

    The smallest corruption each stage's field-for-field comparator
    must still catch: a flipped load value (trace), a flipped load
    outcome (annotate), one extra cycle (model).  Deterministic on
    purpose -- the ``REPRO_TIER_FAULT`` drill must demote identically
    in serial and parallel runs.  Returns *result*.
    """
    if stage == "trace":
        trace = result.trace
        loads = np.nonzero(trace.is_load)[0]
        if len(loads):
            # Cached traces map read-only pages shared across
            # processes: corrupt a private materialized copy, never
            # the shared mapping.
            trace = trace.materialize()
            trace.value[loads[0]] ^= np.uint64(1)
            result.trace = trace
        else:
            result.instruction_count += 1
        return result
    if stage == "annotate":
        from repro.trace.annotate import NOT_A_LOAD
        positions = np.nonzero(result.outcomes != NOT_A_LOAD)[0]
        if len(positions):
            result.outcomes[positions[0]] ^= 1
        else:
            result.stats.loads += 1
        return result
    if stage == "model":
        result.cycles += 1
        return result
    raise FaultError(f"unknown tier fault stage {stage!r}")


# ---------------------------------------------------------------------------
# Cache-layer faults.
# ---------------------------------------------------------------------------
def _v2_column_table(data: bytes) -> list[dict]:
    """The column table of an in-memory v2 bundle image."""
    import json
    header_len = int.from_bytes(data[8:12], "little")
    header = json.loads(bytes(data[12:12 + header_len]).decode("utf-8"))
    return header["columns"]


def inject_cache_fault(cache: TraceCache, trace: Trace, scale: str,
                       kind: str, rng: random.Random) -> str:
    """Store *trace*, then damage the v2 bundle on disk; returns what."""
    cache.store(trace, scale)
    path = cache.path_for(trace.name, trace.target, scale)

    if kind == "truncate":
        data = path.read_bytes()
        keep = rng.randrange(1, len(data))
        path.write_bytes(data[:keep])
        return f"bundle truncated to {keep}/{len(data)} bytes"
    if kind == "bitflip":
        # Flip a byte somewhere the integrity layers cover -- the
        # header (footer CRC catches it), the footer itself, or a
        # column's data (its recorded CRC catches it) -- never the
        # semantically meaningless alignment padding.
        data = bytearray(path.read_bytes())
        header_len = int.from_bytes(data[8:12], "little")
        regions = [(0, 12 + header_len), (len(data) - 12, len(data))]
        regions += [
            (spec["offset"], spec["offset"] + spec["nbytes"])
            for spec in _v2_column_table(data) if spec["nbytes"]
        ]
        start, end = regions[rng.randrange(len(regions))]
        offset = start + rng.randrange(end - start)
        data[offset] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(data))
        return f"bundle bit-flipped at byte {offset}"
    if kind == "garbage":
        path.write_bytes(rng.randbytes(256))
        return "bundle replaced with garbage"
    if kind == "empty":
        path.write_bytes(b"")
        return "bundle emptied"
    if kind == "version_bump":
        original = cache.version
        try:
            cache.version = original + "-stale"
            cache.store(trace, scale)
        finally:
            cache.version = original
        return "bundle re-stamped with a stale version"
    if kind == "checksum_mismatch":
        # Alter one element of a column's on-disk bytes while leaving
        # the header (and so every recorded checksum, and the footer's
        # header CRC) untouched: only the per-column CRC layer can
        # catch the lie.
        data = bytearray(path.read_bytes())
        victims = [spec for spec in _v2_column_table(data)
                   if spec["nbytes"]]
        spec = victims[rng.randrange(len(victims))]
        offset = spec["offset"] + rng.randrange(spec["nbytes"])
        data[offset] ^= 1
        path.write_bytes(bytes(data))
        return (f"column {spec['name']!r} altered under its recorded "
                f"checksum")
    raise FaultError(f"unknown cache fault kind {kind!r}")


# ---------------------------------------------------------------------------
# LVP-layer faults.
# ---------------------------------------------------------------------------
def make_lvp_hook(kind: str, rng: random.Random,
                  n_events: int) -> tuple[Callable, str]:
    """An ``annotate_trace`` fault hook firing once mid-annotation."""
    if kind not in ("lvpt_poke", "lct_poke", "cvu_bogus", "unit_flush"):
        raise FaultError(f"unknown LVP fault kind {kind!r}")
    fire_at = rng.randrange(n_events) if n_events > 0 else 0
    fired = [False]

    def hook(unit, event_index: int) -> None:
        if fired[0] or event_index < fire_at:
            return
        fired[0] = True
        if kind == "unit_flush":
            unit.flush()
            return
        lvpt = unit.lvpt
        if lvpt is None:
            return
        if kind == "lvpt_poke" and hasattr(lvpt, "poke"):
            depth = max(1, getattr(lvpt, "history_depth", 1))
            lvpt.poke(rng.randrange(lvpt.entries),
                      [rng.randrange(2 ** 64) for _ in range(depth)])
        elif kind == "lct_poke":
            top = (1 << unit.lct.bits) - 1
            unit.lct.poke(rng.randrange(unit.lct.entries),
                          rng.randrange(top + 1))
        elif kind == "cvu_bogus":
            unit.cvu.insert(rng.randrange(1 << 24) * 8,
                            rng.randrange(max(1, lvpt.entries)))

    return hook, f"{kind} at event {fire_at}"


# ---------------------------------------------------------------------------
# The safety oracle.
# ---------------------------------------------------------------------------
def audit_violations(annotated: AnnotatedTrace,
                     limit: int = 10) -> list[str]:
    """Every way *annotated* let a wrong forwarded value stand.

    Requires the annotation to have run with ``audit=True``.  For mru
    selection the check is exact: a load marked CORRECT or CONSTANT
    must have forwarded precisely the value it actually loaded, and a
    load marked INCORRECT must not have.  Perfect-selection (oracle)
    configurations only get the structural checks, since their notion
    of "correct" is any-of-history.
    """
    log = annotated.audit_log
    if log is None:
        return ["annotation was not run with audit=True"]
    problems: list[str] = []
    stats = annotated.stats
    if sum(stats.outcomes.values()) != stats.loads:
        problems.append("outcome counts do not sum to the load count")
    if stats.loads != annotated.trace.num_loads:
        problems.append("unit processed a different number of loads "
                        "than the trace contains")
    if len(log) != stats.loads:
        problems.append("audit log length disagrees with the load count")

    config = annotated.config
    strict = not config.perfect and config.selection == "mru"
    forwarded = (LoadOutcome.CORRECT, LoadOutcome.CONSTANT)
    for pc, predicted, actual, outcome in log:
        if len(problems) >= limit:
            problems.append("... further violations suppressed")
            break
        if outcome in forwarded:
            if predicted is None:
                problems.append(
                    f"load @0x{pc:x} marked {outcome.name} with nothing "
                    "to forward")
            elif strict and predicted != actual:
                problems.append(
                    f"load @0x{pc:x} marked {outcome.name} but forwarded "
                    f"0x{predicted:x} != actual 0x{actual:x}")
        elif (outcome is LoadOutcome.INCORRECT and strict
              and predicted is not None and predicted == actual):
            problems.append(
                f"load @0x{pc:x} marked INCORRECT but the forwarded "
                "value was right")
    return problems
