"""Shared helpers for workload program construction.

Two kinds of support live here:

* **Structured control flow** for the :class:`CodeBuilder` DSL
  (:func:`for_range`, :func:`if_cond`, :func:`while_loop`) so workloads
  read like the C programs they stand in for instead of label soup.
* **Deterministic input synthesis** (:class:`Lcg`, text/word helpers).
  Inputs are generated with a self-contained linear congruential
  generator so results never depend on Python or numpy RNG versions.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.isa.builder import CodeBuilder

#: Branch condition names -> (builder emitter picking the *inverse* branch).
_INVERSE = {
    "eq": "bne", "ne": "beq", "lt": "bge", "ge": "blt",
    "ltu": "bgeu", "geu": "bltu",
}


@contextmanager
def for_range(b: CodeBuilder, i: int, bound: int, *, start: int = 0,
              step: int = 1) -> Iterator[str]:
    """Emit ``for (i = start; i < bound; i += step) { body }``.

    *i* and *bound* are register ids; *bound* must already hold the loop
    limit.  Yields the label of the loop exit (usable as a break target).
    """
    loop = b.fresh_label("for")
    done = b.fresh_label("endfor")
    b.li(i, start)
    b.label(loop)
    b.bge(i, bound, done)
    yield done
    b.addi(i, i, step)
    b.j(loop)
    b.label(done)


@contextmanager
def count_down(b: CodeBuilder, counter: int) -> Iterator[None]:
    """Emit ``do { body } while (--counter != 0)``.

    *counter* must hold a positive trip count on entry.
    """
    loop = b.fresh_label("cdown")
    b.label(loop)
    yield
    b.addi(counter, counter, -1)
    b.bnez(counter, loop)


@contextmanager
def while_loop(b: CodeBuilder) -> Iterator[tuple[str, str]]:
    """Emit an open loop; yields ``(continue_label, break_label)``.

    The body is responsible for branching to the break label; falling
    off the end of the body loops back to the top.
    """
    top = b.fresh_label("while")
    done = b.fresh_label("endwhile")
    b.label(top)
    yield top, done
    b.j(top)
    b.label(done)


@contextmanager
def if_cond(b: CodeBuilder, cond: str, a: int, b_reg: int) -> Iterator[None]:
    """Emit ``if (a <cond> b) { body }`` using the inverse-branch idiom."""
    skip = b.fresh_label("endif")
    getattr(b, _INVERSE[cond])(a, b_reg, skip)
    yield
    b.label(skip)


@contextmanager
def if_else(b: CodeBuilder, cond: str, a: int,
            b_reg: int) -> Iterator[callable]:
    """Emit ``if (a <cond> b) { then } else { else }``.

    Yields a zero-argument callable; invoke it between the then-body and
    the else-body::

        with if_else(b, "eq", r4, r5) as otherwise:
            ...then...
            otherwise()
            ...else...
    """
    else_label = b.fresh_label("else")
    end_label = b.fresh_label("endif")
    getattr(b, _INVERSE[cond])(a, b_reg, else_label)
    state = {"taken": False}

    def otherwise() -> None:
        state["taken"] = True
        b.j(end_label)
        b.label(else_label)

    yield otherwise
    if not state["taken"]:
        b.label(else_label)
    b.label(end_label)


class Lcg:
    """Deterministic 64-bit LCG (MMIX constants) for input synthesis."""

    MULTIPLIER = 6364136223846793005
    INCREMENT = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self.state = (seed * 2862933555777941757 + 3037000493) & self.MASK

    def next_u64(self) -> int:
        """Next raw 64-bit value."""
        self.state = (self.state * self.MULTIPLIER + self.INCREMENT) \
            & self.MASK
        return self.state

    def below(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)``."""
        return (self.next_u64() >> 16) % bound

    def choice(self, items: Sequence):
        """Pick one element of *items*."""
        return items[self.below(len(items))]

    def uniform(self, low: float, high: float) -> float:
        """Uniform-ish float in ``[low, high)``."""
        fraction = (self.next_u64() >> 11) / float(1 << 53)
        return low + (high - low) * fraction


#: Small vocabulary used to synthesize "real-world" text inputs (word
#: frequency is deliberately skewed; real text has heavy repetition --
#: the paper's "data redundancy" observation).
VOCABULARY = (
    "the", "of", "and", "a", "to", "in", "is", "it", "that", "was",
    "store", "most", "state", "moment", "stream", "memory", "storm",
    "system", "cache", "value", "load", "predict", "branch", "almost",
    "history", "table", "result", "static", "dynamic", "register",
)


def make_text(rng: Lcg, num_words: int, line_words: int = 8) -> bytes:
    """Synthesize whitespace-separated ASCII text, *num_words* long."""
    out = []
    for i in range(num_words):
        # Zipf-ish skew: half the draws come from the first few words.
        if rng.below(2):
            word = VOCABULARY[rng.below(6)]
        else:
            word = rng.choice(VOCABULARY)
        out.append(word)
        out.append("\n" if (i + 1) % line_words == 0 else " ")
    return "".join(out).encode("ascii")


def make_word_list(rng: Lcg, count: int, min_len: int = 3,
                   max_len: int = 9) -> list[bytes]:
    """Synthesize a lowercase dictionary word list."""
    words = []
    for _ in range(count):
        length = min_len + rng.below(max_len - min_len + 1)
        # Skewed letter distribution (English-ish) aids anagram matches.
        letters = "etaoinshrdlucmf"
        words.append(bytes(
            ord(letters[rng.below(len(letters))]) for _ in range(length)
        ))
    return words


#: Scale presets: every workload sizes its input from these factors.
SCALES = {"tiny": 0.25, "small": 1.0, "reference": 4.0}


def scaled(scale: str, base: int, minimum: int = 1) -> int:
    """Scale an input-size parameter by the named preset."""
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    return max(minimum, int(base * SCALES[scale]))
