"""``xlisp`` workload: a small Lisp-style tree-walking interpreter.

SPEC '92 xlisp interprets Lisp (the paper runs 6-queens).  This
miniature captures the same execution character: a recursive ``eval``
over tagged heap cells, dispatching on node tags through a jump table
(the "computed branches" idiom), binding arguments in a linked-list
environment allocated from a bump arena, and recursing heavily (the
"call-subgraph identities" idiom).  The interpreted program is the
classic doubly-recursive Fibonacci.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.opcodes import ValueKind
from repro.isa.program import Program
from repro.workloads.support import if_cond

NAME = "xlisp"
DESCRIPTION = "tree-walking interpreter (recursive fib)"
INPUT_DESCRIPTION = "fib(N) expression tree"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "52.1M", "alpha": "60.0M"}

# Node tags.
T_NUM = 0  # a = literal value
T_VAR = 1  # a = de Bruijn-ish variable index (0 = innermost binding)
T_ADD = 2  # a, b = operand node addresses
T_SUB = 3
T_LT = 4
T_IF = 5  # a = condition, b = address of [then, else] pair cell
T_CALL = 6  # a = argument expression (the single global function)

FIB_ARG = {"tiny": 8, "small": 10, "reference": 13}


def expected_result(scale: str = "small") -> int:
    """fib(N) for the scale's argument."""
    n = FIB_ARG[scale]
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the xlisp program for *target* at *scale*."""
    n = FIB_ARG[scale]

    b = CodeBuilder(NAME, target=target)
    data = b.data

    def node(tag: int, a: int = 0, b_val: int = 0) -> int:
        """Emit a 3-word heap cell; returns its address."""
        kind_a = ValueKind.DATA_ADDR if tag >= T_ADD else ValueKind.INT_DATA
        addr = data.word(tag)
        data.word(a, kind_a)
        data.word(
            b_val,
            ValueKind.DATA_ADDR if tag in (T_ADD, T_SUB, T_LT, T_IF)
            else ValueKind.INT_DATA,
        )
        return addr

    # fib body: (if (< x 2) x (+ (fib (- x 1)) (fib (- x 2))))
    var_x = node(T_VAR, 0)
    two = node(T_NUM, 2)
    one = node(T_NUM, 1)
    cond = node(T_LT, var_x, two)
    sub1 = node(T_SUB, var_x, one)
    sub2 = node(T_SUB, var_x, two)
    call1 = node(T_CALL, sub1)
    call2 = node(T_CALL, sub2)
    plus = node(T_ADD, call1, call2)
    # [then, else] pair cell
    pair = data.word(var_x, ValueKind.DATA_ADDR)
    data.word(plus, ValueKind.DATA_ADDR)
    body = node(T_IF, cond, pair)
    # top-level expression: (fib N)
    arg = node(T_NUM, n)
    top = node(T_CALL, arg)

    data.label("fib_body")
    data.word(body, ValueKind.DATA_ADDR)
    data.label("top_expr")
    data.word(top, ValueKind.DATA_ADDR)
    data.label("result")
    data.word(0)
    data.label("env_arena")  # bump arena for environment cells
    data.space(4096)
    data.label("env_next")
    data.pointer("env_arena")

    # ------------------------------------------------------------------
    # eval(r3 = node ptr, r4 = env ptr) -> r3 = value.
    # Environment cells are [value, next] pairs; T_VAR index 0 reads the
    # innermost binding, deeper indices walk the chain.
    # r24 = node, r25 = env, r26 = partial result.
    # ------------------------------------------------------------------
    with b.function("eval", save=(24, 25, 26)):
        b.mov(24, 3)
        b.mov(25, 4)
        b.ld(5, 24, 0)  # tag
        c_num = b.fresh_label("num")
        c_var = b.fresh_label("var")
        c_add = b.fresh_label("add")
        c_sub = b.fresh_label("sub")
        c_lt = b.fresh_label("lt")
        c_if = b.fresh_label("if")
        c_call = b.fresh_label("call")
        b.jump_table(5, [c_num, c_var, c_add, c_sub, c_lt, c_if, c_call])

        b.label(c_num)
        b.ld(3, 24, 8)
        b.return_from_function()

        b.label(c_var)
        b.ld(6, 24, 8)  # index
        b.mov(7, 25)
        walk = b.fresh_label("walk")
        found = b.fresh_label("found")
        b.label(walk)
        b.beqz(6, found)
        b.ld(7, 7, 8)  # next env cell
        b.addi(6, 6, -1)
        b.j(walk)
        b.label(found)
        b.ld(3, 7, 0)
        b.return_from_function()

        for label, is_sub in ((c_add, False), (c_sub, True)):
            b.label(label)
            b.ld(3, 24, 8)
            b.mov(4, 25)
            b.call("eval")
            b.mov(26, 3)
            b.ld(3, 24, 16)
            b.mov(4, 25)
            b.call("eval")
            if is_sub:
                b.sub(3, 26, 3)
            else:
                b.add(3, 26, 3)
            b.return_from_function()

        b.label(c_lt)
        b.ld(3, 24, 8)
        b.mov(4, 25)
        b.call("eval")
        b.mov(26, 3)
        b.ld(3, 24, 16)
        b.mov(4, 25)
        b.call("eval")
        b.slt(3, 26, 3)
        b.return_from_function()

        b.label(c_if)
        b.ld(3, 24, 8)
        b.mov(4, 25)
        b.call("eval")
        b.ld(5, 24, 16)  # pair cell
        with if_cond(b, "ne", 3, 0):
            b.ld(3, 5, 0)  # then branch
            b.mov(4, 25)
            b.call("eval")
            b.return_from_function()
        b.ld(3, 5, 8)  # else branch
        b.mov(4, 25)
        b.call("eval")
        b.return_from_function()

        b.label(c_call)
        b.ld(3, 24, 8)  # argument expression
        b.mov(4, 25)
        b.call("eval")
        # bind: new env cell [argval, old env] from the bump arena
        b.load_addr(5, "env_next")
        b.ld(6, 5, 0)
        b.st(3, 6, 0)
        b.st(25, 6, 8)
        b.addi(7, 6, 16)
        b.st(7, 5, 0)
        b.load_addr(3, "fib_body")
        b.ld(3, 3, 0)
        b.mov(4, 6)
        b.call("eval")
        # unbind: roll the arena pointer back (environments are LIFO)
        b.load_addr(5, "env_next")
        b.ld(6, 5, 0)
        b.addi(6, 6, -16)
        b.st(6, 5, 0)

    with b.function("main"):
        b.load_addr(3, "top_expr")
        b.ld(3, 3, 0)
        b.li(4, 0)  # empty environment
        b.call("eval")
        b.load_addr(4, "result")
        b.st(3, 4, 0)

    return b.build()
