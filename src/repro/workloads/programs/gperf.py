"""``gperf`` workload: perfect hash function search.

GNU gperf searches for character weights that hash a keyword set with
no collisions.  This miniature does the same: candidate weight tables
are derived from a trial counter, every keyword is hashed (reloading
the weight table per character -- run-time constants within a trial),
and a collision bitmap decides whether the trial succeeds.  Keyword
bytes are re-read on every trial, so a 16-deep history captures them
almost perfectly -- matching gperf's high paper locality.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import (
    Lcg,
    for_range,
    if_cond,
    make_word_list,
    while_loop,
)

NAME = "gperf"
DESCRIPTION = "perfect hash weight search"
INPUT_DESCRIPTION = "keyword list (gperf -k style)"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "7.8M", "alpha": "10.8M"}

TABLE_BITS = 10  # hash range 0..1023
MAX_TRIALS = 64
WEIGHT_STEP = 17  # added to a colliding weight between trials


#: Keyword count per scale, chosen so the search converges quickly
#: but not instantly (checked by ``expected_solution``).
KEYWORD_COUNT = {"tiny": 48, "small": 80, "reference": 96}


def input_keywords(scale: str = "small") -> list[bytes]:
    """Keyword set to perfect-hash (deduplicated)."""
    rng = Lcg(seed=0x69E4F)
    words = make_word_list(rng, count=KEYWORD_COUNT[scale], min_len=4,
                           max_len=10)
    seen = set()
    unique = []
    for word in words:
        if word not in seen:
            seen.add(word)
            unique.append(word)
    return unique


def initial_weights() -> list[int]:
    """Starting per-letter weights (mutated between trials)."""
    return [(c * 13 + 5) & 0xFF for c in range(26)]


def _hash(word: bytes, weights: list[int]) -> int:
    h = len(word)
    for char in word:
        h = (h * 17 + weights[char - ord("a")]) & ((1 << TABLE_BITS) - 1)
    return h


def expected_solution(scale: str = "small") -> int:
    """First collision-free trial index, or MAX_TRIALS if none.

    Mirrors the program exactly: on a collision, the weight of the
    colliding word's first letter is bumped and the search retries --
    gperf's actual incremental strategy.
    """
    keywords = input_keywords(scale)
    weights = initial_weights()
    for trial in range(MAX_TRIALS):
        seen = set()
        collider = None
        for word in keywords:
            h = _hash(word, weights)
            if h in seen:
                collider = word
                break
            seen.add(h)
        if collider is None:
            return trial
        index = collider[0] - ord("a")
        weights[index] = (weights[index] + WEIGHT_STEP) & 0xFF
    return MAX_TRIALS


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the gperf program for *target* at *scale*."""
    keywords = input_keywords(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    blob = b"".join(keywords)
    data.label("blob")
    data.bytes_(blob)
    data.label("word_off")
    offsets, cursor = [], 0
    for word in keywords:
        offsets.append(cursor)
        cursor += len(word)
    data.words(offsets)
    data.label("word_len")
    data.words([len(w) for w in keywords])
    data.label("num_words")
    data.word(len(keywords))
    data.label("weights")
    data.words(initial_weights())
    data.label("bitmap")  # one byte per hash slot
    data.space((1 << TABLE_BITS) // 8)
    data.label("solution")
    data.word(MAX_TRIALS)

    # ------------------------------------------------------------------
    # hash_word(r3 = word ptr, r4 = length) -> r3 = hash value.
    # Weight table entries are reloaded per character.
    # ------------------------------------------------------------------
    with b.function("hash_word", leaf=True):
        b.mov(5, 4)  # h = len
        b.add(4, 3, 4)  # end
        b.load_addr(6, "weights")
        b.li(7, 17)
        with while_loop(b) as (_, done):
            b.bgeu(3, 4, done)
            b.lbu(8, 3, 0)
            b.addi(3, 3, 1)
            b.addi(8, 8, -ord("a"))
            b.slli(8, 8, 3)
            b.add(8, 6, 8)
            b.ld(9, 8, 0)  # weight -- constant within a trial
            b.mul(5, 5, 7)
            b.add(5, 5, 9)
            b.andi(5, 5, (1 << TABLE_BITS) - 1)
        b.mov(3, 5)

    # ------------------------------------------------------------------
    # try_trial() -> r3 = -1 if collision-free, else the index of the
    # first colliding keyword.
    # r25 = word index, r26 = word count.
    # ------------------------------------------------------------------
    with b.function("try_trial", save=(25, 26)):
        # clear the bitmap (word stores over the byte flags)
        b.load_addr(5, "bitmap")
        b.li(7, (1 << TABLE_BITS) // 8)
        with for_range(b, 6, 7):
            b.slli(8, 6, 3)
            b.add(8, 5, 8)
            b.st(0, 8, 0)
        # hash every keyword
        b.load_addr(4, "num_words")
        b.ld(26, 4, 0)
        b.li(25, 0)
        loop = b.fresh_label("keys")
        done = b.fresh_label("keys_done")
        b.label(loop)
        b.bge(25, 26, done)
        b.load_addr(5, "word_off")
        b.slli(6, 25, 3)
        b.add(5, 5, 6)
        b.ld(3, 5, 0)
        b.load_addr(7, "blob")
        b.add(3, 7, 3)
        b.load_addr(5, "word_len")
        b.add(5, 5, 6)
        b.ld(4, 5, 0)
        b.call("hash_word")
        b.load_addr(5, "bitmap")
        b.add(5, 5, 3)
        b.lbu(7, 5, 0)
        with if_cond(b, "ne", 7, 0):  # collision: report the word
            b.mov(3, 25)
            b.return_from_function()
        b.li(7, 1)
        b.sb(7, 5, 0)
        b.addi(25, 25, 1)
        b.j(loop)
        b.label(done)
        b.li(3, -1)

    # ------------------------------------------------------------------
    # main: retry until a trial is perfect, bumping the weight of the
    # colliding word's first letter between trials (gperf's strategy).
    # r24 = trial index.
    # ------------------------------------------------------------------
    with b.function("main", save=(24,)):
        b.li(24, 0)
        loop = b.fresh_label("trials")
        done = b.fresh_label("trials_done")
        b.label(loop)
        b.li(5, MAX_TRIALS)
        b.bge(24, 5, done)
        b.call("try_trial")
        b.li(5, -1)
        with if_cond(b, "eq", 3, 5):
            b.load_addr(4, "solution")
            b.st(24, 4, 0)
            b.return_from_function()
        # bump weights[first letter of colliding word]
        b.load_addr(5, "word_off")
        b.slli(6, 3, 3)
        b.add(5, 5, 6)
        b.ld(5, 5, 0)
        b.load_addr(6, "blob")
        b.add(5, 6, 5)
        b.lbu(7, 5, 0)  # first character
        b.addi(7, 7, -ord("a"))
        b.load_addr(8, "weights")
        b.slli(7, 7, 3)
        b.add(8, 8, 7)
        b.ld(9, 8, 0)
        b.addi(9, 9, WEIGHT_STEP)
        b.andi(9, 9, 0xFF)
        b.st(9, 8, 0)
        b.addi(24, 24, 1)
        b.j(loop)
        b.label(done)

    return b.build()
