"""``ccl`` workload: GCC 1.35 stand-in (lex + parse + evaluate).

See :mod:`repro.workloads.programs._cc` for the implementation; ``ccl``
runs the two-phase pipeline (no constant folding) on the smaller input,
mirroring the older compiler on the SPEC '92 input.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.programs._cc import build_cc, reference_run
from repro.workloads.support import scaled

NAME = "ccl"
DESCRIPTION = "compiler front end (GCC 1.35 stand-in)"
INPUT_DESCRIPTION = "synthetic assignment-statement source"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "146M", "alpha": "n/a"}

SEED = 0xCC1


def statement_count(scale: str = "small") -> int:
    """Number of source statements at *scale*."""
    return scaled(scale, 60)


def expected_variables(scale: str = "small") -> list[int]:
    """Final variable values (used by the test suite)."""
    return reference_run(SEED, statement_count(scale))


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the ccl program for *target* at *scale*."""
    return build_cc(NAME, target, SEED, statement_count(scale),
                    fold_pass=False)
