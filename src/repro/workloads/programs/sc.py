"""``sc`` workload: spreadsheet recalculation.

The curses spreadsheet ``sc`` spends its time walking the cell grid and
re-evaluating formulas.  This miniature models a grid of tagged cell
records -- mostly empty, as in real sheets (the paper's "data
redundancy": empty cells) -- and performs full recalculation passes.
Cell dispatch uses a jump table on the cell type (the paper's "computed
branches" idiom), and the repeated passes re-load largely unchanged
cell records, giving sc its high value locality.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import Lcg, for_range, scaled

NAME = "sc"
DESCRIPTION = "spreadsheet recalculation over a sparse grid"
INPUT_DESCRIPTION = "sparse synthetic sheet (70% empty cells)"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "78.5M", "alpha": "107M"}

# Cell types (jump-table cases).
T_EMPTY = 0
T_CONST = 1
T_SUM_LEFT = 2  # sum of all cells to the left in this row
T_REF = 3  # value of another cell plus a delta

#: Words per cell record: [type, value, arg1, arg2].
CELL_WORDS = 4
RECALC_PASSES = 3


def input_grid(scale: str = "small") -> tuple[int, int, list[tuple]]:
    """Return (rows, cols, cells); cells are (type, value, a1, a2)."""
    rng = Lcg(seed0 := 0x5C)
    rows = scaled(scale, 18)
    cols = 14
    cells = []
    for r in range(rows):
        for c in range(cols):
            roll = rng.below(10)
            if roll < 7:
                cells.append((T_EMPTY, 0, 0, 0))
            elif roll < 9 or c == 0:
                cells.append((T_CONST, rng.below(1000), 0, 0))
            elif roll == 9 and r > 0:
                # reference the cell directly above, plus a delta
                cells.append((T_REF, 0, (r - 1) * cols + c, rng.below(50)))
            else:
                cells.append((T_SUM_LEFT, 0, 0, 0))
    # Sprinkle a SUM_LEFT at the end of some rows.
    for r in range(0, rows, 3):
        index = r * cols + (cols - 1)
        cells[index] = (T_SUM_LEFT, 0, 0, 0)
    return rows, cols, cells


def expected_values(scale: str = "small") -> list[int]:
    """Reference cell values after RECALC_PASSES full passes."""
    rows, cols, cells = input_grid(scale)
    values = [c[1] for c in cells]
    for _ in range(RECALC_PASSES):
        for r in range(rows):
            for c in range(cols):
                i = r * cols + c
                kind, _, a1, a2 = cells[i]
                if kind == T_SUM_LEFT:
                    values[i] = sum(values[r * cols:i])
                elif kind == T_REF:
                    values[i] = values[a1] + a2
    return values


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the sc program for *target* at *scale*."""
    rows, cols, cells = input_grid(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("grid")
    flat = []
    for kind, value, a1, a2 in cells:
        flat.extend((kind, value, a1, a2))
    data.words(flat)
    data.label("rows")
    data.word(rows)
    data.label("cols")
    data.word(cols)
    data.label("checksum")
    data.word(0)

    stride = CELL_WORDS * 8

    # ------------------------------------------------------------------
    # eval_cell(r3 = cell index, r4 = row base index): dispatch on the
    # cell type through a jump table; updates the cell's value word.
    # ------------------------------------------------------------------
    with b.function("eval_cell", leaf=True):
        b.load_addr(5, "grid")
        b.li(6, stride)
        b.mul(7, 3, 6)
        b.add(7, 5, 7)  # cell record ptr
        b.ld(8, 7, 0)  # type tag
        case_empty = b.fresh_label("c_empty")
        case_const = b.fresh_label("c_const")
        case_sum = b.fresh_label("c_sum")
        case_ref = b.fresh_label("c_ref")
        end = b.fresh_label("c_end")
        b.jump_table(8, [case_empty, case_const, case_sum, case_ref],
                     scratch=12, scratch2=11)
        b.label(case_empty)
        b.j(end)
        b.label(case_const)
        b.j(end)  # constants keep their value
        b.label(case_sum)
        # value = sum of values from row base up to this cell
        b.li(9, 0)  # accumulator
        b.mov(10, 4)  # scan index
        scan = b.fresh_label("scan")
        scan_done = b.fresh_label("scan_done")
        b.label(scan)
        b.bge(10, 3, scan_done)
        b.mul(11, 10, 6)
        b.add(11, 5, 11)
        b.ld(12, 11, 8)  # neighbour value
        b.add(9, 9, 12)
        b.addi(10, 10, 1)
        b.j(scan)
        b.label(scan_done)
        b.st(9, 7, 8)
        b.j(end)
        b.label(case_ref)
        b.ld(9, 7, 16)  # arg1: referenced index
        b.mul(9, 9, 6)
        b.add(9, 5, 9)
        b.ld(10, 9, 8)  # referenced value
        b.ld(11, 7, 24)  # arg2: delta
        b.add(10, 10, 11)
        b.st(10, 7, 8)
        b.label(end)

    # ------------------------------------------------------------------
    # main: RECALC_PASSES full passes, then checksum the sheet.
    # r24 = pass, r25 = row, r26 = col, r27 = rows, r28 = cols.
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26, 27, 28)):
        b.load_addr(4, "rows")
        b.ld(27, 4, 0)
        b.load_addr(4, "cols")
        b.ld(28, 4, 0)
        b.li(24, 0)
        passes = b.fresh_label("passes")
        passes_done = b.fresh_label("passes_done")
        b.label(passes)
        b.li(5, RECALC_PASSES)
        b.bge(24, 5, passes_done)
        b.li(25, 0)
        rows_loop = b.fresh_label("rows")
        rows_done = b.fresh_label("rows_done")
        b.label(rows_loop)
        b.bge(25, 27, rows_done)
        b.li(26, 0)
        cols_loop = b.fresh_label("cols")
        cols_done = b.fresh_label("cols_done")
        b.label(cols_loop)
        b.bge(26, 28, cols_done)
        b.mul(3, 25, 28)
        b.mov(4, 3)  # row base index
        b.add(3, 3, 26)  # cell index
        b.call("eval_cell")
        b.addi(26, 26, 1)
        b.j(cols_loop)
        b.label(cols_done)
        b.addi(25, 25, 1)
        b.j(rows_loop)
        b.label(rows_done)
        b.addi(24, 24, 1)
        b.j(passes)
        b.label(passes_done)
        # checksum = sum of all cell values
        b.load_addr(5, "grid")
        b.mul(6, 27, 28)
        b.li(7, stride)
        b.li(8, 0)  # sum
        with for_range(b, 9, 6):
            b.mul(10, 9, 7)
            b.add(10, 5, 10)
            b.ld(11, 10, 8)
            b.add(8, 8, 11)
        b.load_addr(4, "checksum")
        b.st(8, 4, 0)

    return b.build()
