"""``compress`` workload: LZW dictionary compression (SPEC '92 129.compress).

A faithful miniature of the SPEC benchmark's core: byte-at-a-time LZW
with an open-addressing hash-table dictionary.  The input is synthetic
whitespace-heavy English-like text (the paper's "data redundancy"
observation: real inputs repeat), so dictionary probes hit the same
chains over and over -- the source of compress's high value locality.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import (
    Lcg,
    if_cond,
    if_else,
    make_text,
    scaled,
    while_loop,
)

NAME = "compress"
DESCRIPTION = "LZW compression (SPEC '92 style)"
INPUT_DESCRIPTION = "synthetic English-like text"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "38.8M", "alpha": "50.2M"}

HASH_SIZE = 8192  # power of two
MAX_CODE = 4096
FIRST_CODE = 256
_HASH_MULT = 2654435761


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the compress program for *target* at *scale*."""
    rng = Lcg(seed=0xC0131)
    text = make_text(rng, num_words=scaled(scale, 260))

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("input")
    data.bytes_(text)
    data.label("input_len")
    data.word(len(text))
    data.label("ht_key")  # key+1, 0 = empty slot
    data.space(HASH_SIZE)
    data.label("ht_val")
    data.space(HASH_SIZE)
    data.label("output")  # emitted codes
    data.space(len(text) + 2)
    data.label("out_count")
    data.word(0)

    # ------------------------------------------------------------------
    # hash_find(key r3) -> r3 = code or -1, r4 = slot index
    # Linear probing over ht_key (stored as key+1 so 0 means empty).
    # ------------------------------------------------------------------
    with b.function("hash_find", leaf=True):
        b.load_const(11, _HASH_MULT)
        b.mul(5, 3, 11)  # h = key * KNUTH
        b.srli(5, 5, 16)
        b.andi(5, 5, HASH_SIZE - 1)  # slot
        b.load_addr(6, "ht_key")
        b.addi(7, 3, 1)  # probe value = key+1
        with while_loop(b) as (_, done):
            b.slli(8, 5, 3)
            b.add(8, 6, 8)
            b.ld(9, 8, 0)  # stored key+1
            with if_cond(b, "eq", 9, 0):  # empty slot: miss
                b.mov(4, 5)
                b.li(3, -1)
                b.return_from_function()
            with if_cond(b, "eq", 9, 7):  # hit
                b.load_addr(10, "ht_val")
                b.slli(8, 5, 3)
                b.add(8, 10, 8)
                b.ld(3, 8, 0)
                b.mov(4, 5)
                b.return_from_function()
            b.addi(5, 5, 1)  # linear probe
            b.andi(5, 5, HASH_SIZE - 1)

    # ------------------------------------------------------------------
    # hash_insert(key r3, slot r4, code r5): store into the found slot.
    # ------------------------------------------------------------------
    with b.function("hash_insert", leaf=True):
        b.load_addr(6, "ht_key")
        b.slli(7, 4, 3)
        b.add(8, 6, 7)
        b.addi(9, 3, 1)
        b.st(9, 8, 0)
        b.load_addr(6, "ht_val")
        b.add(8, 6, 7)
        b.st(5, 8, 0)

    # ------------------------------------------------------------------
    # emit_code(code r3): append to the output array.
    # ------------------------------------------------------------------
    with b.function("emit_code", leaf=True):
        b.load_addr(4, "out_count")
        b.ld(5, 4, 0)
        b.load_addr(6, "output")
        b.slli(7, 5, 3)
        b.add(7, 6, 7)
        b.st(3, 7, 0)
        b.addi(5, 5, 1)
        b.st(5, 4, 0)

    # ------------------------------------------------------------------
    # main: the LZW loop.
    #   r24 = cursor, r25 = input end, r26 = w (current prefix code),
    #   r27 = next free code, r28 = key scratch
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26, 27, 28)):
        b.load_addr(24, "input")
        b.load_addr(4, "input_len")
        b.ld(25, 4, 0)
        b.add(25, 24, 25)  # end pointer
        b.lbu(26, 24, 0)  # w = first byte
        b.addi(24, 24, 1)
        b.li(27, FIRST_CODE)
        with while_loop(b) as (_, done):
            b.bgeu(24, 25, done)
            b.lbu(28, 24, 0)  # c
            b.addi(24, 24, 1)
            b.slli(3, 26, 8)
            b.or_(3, 3, 28)  # key = (w << 8) | c
            b.call("hash_find")
            with if_else(b, "ge", 3, 0) as otherwise:
                b.mov(26, 3)  # found: w = code
                otherwise()
                # Miss: grow the dictionary (slot still live in r4 from
                # hash_find), emit w, restart the prefix at c.
                b.li(6, MAX_CODE)
                with if_cond(b, "lt", 27, 6):
                    b.slli(3, 26, 8)
                    b.or_(3, 3, 28)  # recompute key
                    b.mov(5, 27)
                    b.call("hash_insert")
                    b.addi(27, 27, 1)
                b.mov(3, 26)
                b.call("emit_code")
                b.mov(26, 28)
        # flush final prefix code
        b.mov(3, 26)
        b.call("emit_code")

    return b.build()
