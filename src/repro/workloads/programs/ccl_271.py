"""``ccl-271`` workload: GCC 2.7.1 stand-in (lex + parse + fold + evaluate).

See :mod:`repro.workloads.programs._cc` for the implementation; relative
to ``ccl`` this newer-compiler stand-in adds a constant-folding rewrite
pass over every statement's AST and compiles a larger input, as the
paper's ccl-271 row (GCC 2.7.1, SPEC '95 flags) is its biggest trace.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.workloads.programs._cc import build_cc, reference_run
from repro.workloads.support import scaled

NAME = "ccl-271"
DESCRIPTION = "compiler front end with folding (GCC 2.7.1 stand-in)"
INPUT_DESCRIPTION = "synthetic assignment-statement source (larger)"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "102M", "alpha": "117M"}

SEED = 0xCC271


def statement_count(scale: str = "small") -> int:
    """Number of source statements at *scale*."""
    return scaled(scale, 90)


def expected_variables(scale: str = "small") -> list[int]:
    """Final variable values (used by the test suite)."""
    return reference_run(SEED, statement_count(scale))


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the ccl-271 program for *target* at *scale*."""
    return build_cc(NAME, target, SEED, statement_count(scale),
                    fold_pass=True)
