"""``gawk`` workload: parsing a simulator result file.

The paper runs GNU awk over "1.7M simulator result parser output file".
This miniature does what such an awk script does: for every line of a
``tag value value value`` report, it tokenizes the fields, converts the
numeric fields with an ``atoi`` loop, accumulates per-column totals, and
counts occurrences of each tag in a small hash table.  Field values are
skewed toward zero (sparse counters dominate real simulator output --
the paper's "data redundancy" source of value locality).
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import Lcg, if_cond, scaled, while_loop

NAME = "gawk"
DESCRIPTION = "field parsing and per-column accumulation"
INPUT_DESCRIPTION = "synthetic simulator-result report"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "25.0M", "alpha": "53.0M"}

TAGS = (b"cycles", b"loads", b"stores", b"hits", b"misses", b"stalls")
NUM_COLUMNS = 3
TAG_TABLE_SIZE = 64


def input_lines(scale: str = "small") -> list[tuple[bytes, list[int]]]:
    """The report lines: (tag, numeric column values)."""
    rng = Lcg(seed=0x6A3B)
    lines = []
    for _ in range(scaled(scale, 220)):
        tag = rng.choice(TAGS)
        values = []
        for _ in range(NUM_COLUMNS):
            # Heavily zero-skewed, like idle counters in real reports.
            if rng.below(3):
                values.append(0)
            else:
                values.append(rng.below(100000))
        lines.append((tag, values))
    return lines


def render_input(scale: str = "small") -> bytes:
    """The raw text fed to the program."""
    rows = []
    for tag, values in input_lines(scale):
        rows.append(tag + b" " + b" ".join(
            str(v).encode("ascii") for v in values))
    return b"\n".join(rows) + b"\n"


def expected_column_sums(scale: str = "small") -> list[int]:
    """Reference per-column totals (used by the test suite)."""
    sums = [0] * NUM_COLUMNS
    for _, values in input_lines(scale):
        for column, value in enumerate(values):
            sums[column] += value
    return sums


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the gawk program for *target* at *scale*."""
    text = render_input(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("input")
    data.bytes_(text)
    data.label("input_len")
    data.word(len(text))
    data.label("col_sums")
    data.space(NUM_COLUMNS)
    data.label("tag_hash")  # open addressing: hash of first 4 chars
    data.space(TAG_TABLE_SIZE)
    data.label("tag_counts")
    data.space(TAG_TABLE_SIZE)
    data.label("line_count")
    data.word(0)
    # awk's runtime state lives in globals that inner loops reload: the
    # field separator (FS) and the expected field count (NF).  Both are
    # run-time constants -- classic value-locality sources.
    data.label("fs_char")
    data.word(ord(" "))
    data.label("num_fields")
    data.word(NUM_COLUMNS)

    # ------------------------------------------------------------------
    # skip_spaces(r3=cursor, r4=end) -> r3 advanced past blanks.
    # Reloads FS from its global every character, as the awk inner loop
    # does (it can change between records in principle).
    # ------------------------------------------------------------------
    with b.function("skip_spaces", leaf=True):
        with while_loop(b) as (_, done):
            b.bgeu(3, 4, done)
            b.load_addr(7, "fs_char")
            b.ld(5, 7, 0)
            b.lbu(6, 3, 0)
            b.bne(6, 5, done)
            b.addi(3, 3, 1)

    # ------------------------------------------------------------------
    # atoi(r3=cursor, r4=end) -> r3 = value, r4 = new cursor.
    # Stops at the first non-digit.
    # ------------------------------------------------------------------
    with b.function("atoi", leaf=True):
        b.li(5, 0)  # accumulator
        b.li(6, ord("0"))
        b.li(7, ord("9") + 1)
        b.li(8, 10)
        with while_loop(b) as (_, done):
            b.bgeu(3, 4, done)
            b.lbu(9, 3, 0)
            b.blt(9, 6, done)
            b.bge(9, 7, done)
            b.mul(5, 5, 8)
            b.sub(9, 9, 6)
            b.add(5, 5, 9)
            b.addi(3, 3, 1)
        b.mov(4, 3)
        b.mov(3, 5)

    # ------------------------------------------------------------------
    # tag_count(r3 = tag ptr): hash the first 4 bytes, bump a counter.
    # ------------------------------------------------------------------
    with b.function("tag_count", leaf=True):
        b.li(5, 0)
        b.li(7, 4)
        b.li(6, 0)
        probe = b.fresh_label("hash4")
        done4 = b.fresh_label("hash4_done")
        b.label(probe)
        b.bge(6, 7, done4)
        b.lbu(8, 3, 0)
        b.addi(3, 3, 1)
        b.slli(5, 5, 5)
        b.add(5, 5, 8)
        b.addi(6, 6, 1)
        b.j(probe)
        b.label(done4)
        b.andi(5, 5, TAG_TABLE_SIZE - 1)
        b.load_addr(6, "tag_hash")
        b.load_addr(7, "tag_counts")
        with while_loop(b) as (_, done):
            b.slli(8, 5, 3)
            b.add(9, 6, 8)
            b.ld(10, 9, 0)  # stored hash key + 1
            b.addi(11, 5, 1)
            with if_cond(b, "eq", 10, 0):  # empty: claim the slot
                b.st(11, 9, 0)
                b.add(9, 7, 8)
                b.li(12, 1)
                b.st(12, 9, 0)
                b.return_from_function()
            with if_cond(b, "eq", 10, 11):  # ours: increment
                b.add(9, 7, 8)
                b.ld(12, 9, 0)
                b.addi(12, 12, 1)
                b.st(12, 9, 0)
                b.return_from_function()
            b.addi(5, 5, 1)
            b.andi(5, 5, TAG_TABLE_SIZE - 1)

    # ------------------------------------------------------------------
    # main: line loop.
    # r24 = cursor, r25 = end, r26 = column index, r27 = lines.
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26, 27)):
        b.load_addr(24, "input")
        b.load_addr(4, "input_len")
        b.ld(5, 4, 0)
        b.add(25, 24, 5)
        b.li(27, 0)
        outer_done = b.fresh_label("eof")
        outer = b.fresh_label("line")
        b.label(outer)
        b.bgeu(24, 25, outer_done)
        # Tag field: count it, then skip to the first blank.
        b.mov(3, 24)
        b.call("tag_count")
        b.li(6, ord(" "))
        with while_loop(b) as (_, done):
            b.bgeu(24, 25, done)
            b.lbu(7, 24, 0)
            b.beq(7, 6, done)
            b.addi(24, 24, 1)
        # Numeric columns; NF is reloaded from its global per field.
        b.li(26, 0)
        cols = b.fresh_label("cols")
        cols_done = b.fresh_label("cols_done")
        b.label(cols)
        b.load_addr(13, "num_fields")
        b.ld(13, 13, 0)
        b.bge(26, 13, cols_done)
        b.mov(3, 24)
        b.mov(4, 25)
        b.call("skip_spaces")
        b.mov(24, 3)
        b.mov(4, 25)
        b.call("atoi")
        b.mov(24, 4)  # cursor past the number
        b.load_addr(5, "col_sums")
        b.slli(6, 26, 3)
        b.add(5, 5, 6)
        b.ld(7, 5, 0)
        b.add(7, 7, 3)
        b.st(7, 5, 0)
        b.addi(26, 26, 1)
        b.j(cols)
        b.label(cols_done)
        # Skip to just past the newline.
        b.li(6, ord("\n"))
        with while_loop(b) as (_, done):
            b.bgeu(24, 25, done)
            b.lbu(7, 24, 0)
            b.addi(24, 24, 1)
            b.beq(7, 6, done)
        b.addi(27, 27, 1)
        b.j(outer)
        b.label(outer_done)
        b.load_addr(4, "line_count")
        b.st(27, 4, 0)

    return b.build()
