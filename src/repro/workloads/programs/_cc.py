"""Shared implementation of the ``ccl`` / ``ccl-271`` compiler workloads.

GCC dominates the paper's benchmark list twice (GCC 1.35 as ``ccl`` and
GCC 2.7.1 as ``ccl-271``).  This module implements a miniature compiler
front end with the phases that dominate a real one's profile:

1. **Lexing** -- a byte-at-a-time scanner classifying characters through
   a 128-entry kind table (constant loads), interning identifiers in a
   linear symbol table (string compares).
2. **Parsing** -- recursive-descent expression parser building an AST
   in a bump arena (heap cells, recursion, spills).
3. **Constant folding** (``ccl-271`` only) -- a recursive rewrite pass
   over each AST, folding operator nodes whose children are literals.
4. **Evaluation** ("codegen" stand-in) -- a recursive tree walk
   computing each statement's value and updating the variable table.

The input "source file" is synthesized assignment statements like
``x3 = x1 + 12 * ( x2 - 7 ) ;``.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import Lcg, if_cond, while_loop

NUM_VARS = 6

# Token types.
TK_EOF = 0
TK_NUM = 1
TK_ID = 2
TK_PLUS = 3
TK_MINUS = 4
TK_STAR = 5
TK_LPAREN = 6
TK_RPAREN = 7
TK_ASSIGN = 8
TK_SEMI = 9

# AST node tags.
N_NUM = 0
N_VAR = 1
N_ADD = 2
N_SUB = 3
N_MUL = 4

_MASK = (1 << 64) - 1


def generate_source(seed: int, statements: int) -> bytes:
    """Synthesize the source file: assignment statements over x0..x5."""
    rng = Lcg(seed)
    lines = []
    for _ in range(statements):
        dest = f"x{rng.below(NUM_VARS)}"
        terms = []
        for t in range(1 + rng.below(3)):
            if rng.below(2):
                atom = f"x{rng.below(NUM_VARS)}"
            else:
                atom = str(rng.below(100))
            if rng.below(3) == 0:
                atom = f"( {atom} - {rng.below(10)} )"
            if t:
                terms.append(rng.choice(("+", "-", "*")))
            terms.append(atom)
        lines.append(f"{dest} = {' '.join(terms)} ;")
    return ("\n".join(lines) + "\n").encode("ascii")


def reference_run(seed: int, statements: int) -> list[int]:
    """Reference interpreter over the same source (for the test suite)."""
    source = generate_source(seed, statements).decode("ascii")
    variables = [0] * NUM_VARS

    def tokenize(text: str) -> list:
        out = []
        for tok in text.split():
            if tok == ";":
                out.append((TK_SEMI, 0))
            elif tok == "=":
                out.append((TK_ASSIGN, 0))
            elif tok == "+":
                out.append((TK_PLUS, 0))
            elif tok == "-":
                out.append((TK_MINUS, 0))
            elif tok == "*":
                out.append((TK_STAR, 0))
            elif tok == "(":
                out.append((TK_LPAREN, 0))
            elif tok == ")":
                out.append((TK_RPAREN, 0))
            elif tok.startswith("x"):
                out.append((TK_ID, int(tok[1:])))
            else:
                out.append((TK_NUM, int(tok)))
        out.append((TK_EOF, 0))
        return out

    tokens = tokenize(source)
    pos = 0

    def peek() -> tuple:
        return tokens[pos]

    def advance() -> tuple:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        return token

    def parse_factor():
        kind, value = advance()
        if kind == TK_NUM:
            return ("num", value)
        if kind == TK_ID:
            return ("var", value)
        node = parse_expr()  # TK_LPAREN
        advance()  # TK_RPAREN
        return node

    def parse_term():
        node = parse_factor()
        while peek()[0] == TK_STAR:
            advance()
            node = ("mul", node, parse_factor())
        return node

    def parse_expr():
        node = parse_term()
        while peek()[0] in (TK_PLUS, TK_MINUS):
            kind, _ = advance()
            op = "add" if kind == TK_PLUS else "sub"
            node = (op, node, parse_term())
        return node

    def evaluate(node) -> int:
        if node[0] == "num":
            return node[1]
        if node[0] == "var":
            return variables[node[1]]
        left = evaluate(node[1])
        right = evaluate(node[2])
        if node[0] == "add":
            return (left + right) & _MASK
        if node[0] == "sub":
            return (left - right) & _MASK
        return (left * right) & _MASK

    while peek()[0] != TK_EOF:
        _, dest = advance()  # TK_ID
        advance()  # TK_ASSIGN
        node = parse_expr()
        advance()  # TK_SEMI
        variables[dest] = evaluate(node)
    return variables


def build_cc(name: str, target: str, seed: int, statements: int,
             fold_pass: bool) -> Program:
    """Build a compiler workload program."""
    source = generate_source(seed, statements)

    b = CodeBuilder(name, target=target)
    data = b.data
    data.label("source")
    data.bytes_(source)
    data.label("source_len")
    data.word(len(source))
    # Character-kind table: 0 other, 1 digit, 2 letter, 3 space.
    kinds = [0] * 128
    for c in range(ord("0"), ord("9") + 1):
        kinds[c] = 1
    for c in range(ord("a"), ord("z") + 1):
        kinds[c] = 2
    for c in (ord(" "), ord("\n"), ord("\t")):
        kinds[c] = 3
    data.label("char_kind")
    data.words(kinds)
    max_tokens = len(source) + 2
    data.label("tok_type")
    data.space(max_tokens)
    data.label("tok_value")
    data.space(max_tokens)
    data.label("num_tokens")
    data.word(0)
    data.label("variables")
    data.space(NUM_VARS)
    # AST arena: 4 words per node [tag, value/left, right, spare].
    data.label("arena")
    data.space(4 * 512)
    data.label("arena_next")
    data.pointer("arena")
    data.label("tok_pos")
    data.word(0)
    data.label("fold_count")
    data.word(0)

    # ------------------------------------------------------------------
    # lex(): tokenize the whole source into tok_type/tok_value.
    # r24 = cursor, r25 = end, r26 = token index.
    # ------------------------------------------------------------------
    with b.function("lex", save=(24, 25, 26)):
        b.load_addr(24, "source")
        b.load_addr(4, "source_len")
        b.ld(5, 4, 0)
        b.add(25, 24, 5)
        b.li(26, 0)
        outer = b.fresh_label("lex_loop")
        outer_done = b.fresh_label("lex_done")
        b.label(outer)
        b.bgeu(24, 25, outer_done)
        b.lbu(5, 24, 0)
        b.load_addr(6, "char_kind")
        b.slli(7, 5, 3)
        b.add(7, 6, 7)
        b.ld(8, 7, 0)  # kind -- loads from a constant table
        # whitespace: skip
        b.li(9, 3)
        with if_cond(b, "eq", 8, 9):
            b.addi(24, 24, 1)
            b.j(outer)
        b.li(9, 1)
        with if_cond(b, "eq", 8, 9):  # number
            b.li(10, 0)
            with while_loop(b) as (_, done):
                b.bgeu(24, 25, done)
                b.lbu(5, 24, 0)
                b.load_addr(6, "char_kind")
                b.slli(7, 5, 3)
                b.add(7, 6, 7)
                b.ld(8, 7, 0)
                b.li(9, 1)
                b.bne(8, 9, done)
                b.li(9, 10)
                b.mul(10, 10, 9)
                b.addi(5, 5, -ord("0"))
                b.add(10, 10, 5)
                b.addi(24, 24, 1)
            b.li(3, TK_NUM)
            b.mov(4, 10)
            b.call("emit_token")
            b.j(outer)
        b.li(9, 2)
        with if_cond(b, "eq", 8, 9):  # identifier: x<digit>
            b.lbu(10, 24, 1)  # digit after 'x'
            b.addi(10, 10, -ord("0"))
            b.addi(24, 24, 2)
            b.li(3, TK_ID)
            b.mov(4, 10)
            b.call("emit_token")
            b.j(outer)
        # punctuation: map via compare chain
        b.addi(24, 24, 1)
        for char, token in ((ord("+"), TK_PLUS), (ord("-"), TK_MINUS),
                            (ord("*"), TK_STAR), (ord("("), TK_LPAREN),
                            (ord(")"), TK_RPAREN), (ord("="), TK_ASSIGN),
                            (ord(";"), TK_SEMI)):
            b.li(9, char)
            with if_cond(b, "eq", 5, 9):
                b.li(3, token)
                b.li(4, 0)
                b.call("emit_token")
                b.j(outer)
        b.j(outer)  # unknown characters are skipped
        b.label(outer_done)
        b.li(3, TK_EOF)
        b.li(4, 0)
        b.call("emit_token")

    # emit_token(r3 = type, r4 = value)  [leaf; uses r5-r8]
    with b.function("emit_token", leaf=True):
        b.load_addr(5, "num_tokens")
        b.ld(6, 5, 0)
        b.slli(7, 6, 3)
        b.load_addr(8, "tok_type")
        b.add(8, 8, 7)
        b.st(3, 8, 0)
        b.load_addr(8, "tok_value")
        b.add(8, 8, 7)
        b.st(4, 8, 0)
        b.addi(6, 6, 1)
        b.st(6, 5, 0)

    # ------------------------------------------------------------------
    # Token-stream accessors (leaf helpers).
    # peek_type() -> r3; advance() -> r3=type, r4=value
    # ------------------------------------------------------------------
    with b.function("peek_type", leaf=True):
        b.load_addr(5, "tok_pos")
        b.ld(6, 5, 0)
        b.slli(7, 6, 3)
        b.load_addr(8, "tok_type")
        b.add(8, 8, 7)
        b.ld(3, 8, 0)

    with b.function("advance", leaf=True):
        b.load_addr(5, "tok_pos")
        b.ld(6, 5, 0)
        b.slli(7, 6, 3)
        b.load_addr(8, "tok_type")
        b.add(8, 8, 7)
        b.ld(3, 8, 0)
        b.load_addr(8, "tok_value")
        b.add(8, 8, 7)
        b.ld(4, 8, 0)
        b.addi(6, 6, 1)
        b.st(6, 5, 0)

    # new_node(r3=tag, r4=a, r5=b) -> r3 = node ptr  [leaf]
    with b.function("new_node", leaf=True):
        b.load_addr(6, "arena_next")
        b.ld(7, 6, 0)
        b.st(3, 7, 0)
        b.st(4, 7, 8)
        b.st(5, 7, 16)
        b.addi(8, 7, 32)
        b.st(8, 6, 0)
        b.mov(3, 7)

    # ------------------------------------------------------------------
    # parse_factor / parse_term / parse_expr: recursive descent.
    # Each returns an AST node pointer in r3.
    # ------------------------------------------------------------------
    with b.function("parse_factor", save=(24,)):
        b.call("advance")
        b.li(5, TK_NUM)
        with if_cond(b, "eq", 3, 5):
            b.li(3, N_NUM)
            b.li(5, 0)
            b.call("new_node")
            b.return_from_function()
        b.li(5, TK_ID)
        with if_cond(b, "eq", 3, 5):
            b.li(3, N_VAR)
            b.li(5, 0)
            b.call("new_node")
            b.return_from_function()
        # '(' expr ')'
        b.call("parse_expr")
        b.mov(24, 3)
        b.call("advance")  # consume ')'
        b.mov(3, 24)

    with b.function("parse_term", save=(24,)):
        b.call("parse_factor")
        b.mov(24, 3)
        loop = b.fresh_label("term")
        done = b.fresh_label("term_done")
        b.label(loop)
        b.call("peek_type")
        b.li(5, TK_STAR)
        b.bne(3, 5, done)
        b.call("advance")
        b.call("parse_factor")
        b.mov(5, 3)
        b.li(3, N_MUL)
        b.mov(4, 24)
        b.call("new_node")
        b.mov(24, 3)
        b.j(loop)
        b.label(done)
        b.mov(3, 24)

    with b.function("parse_expr", save=(24, 25)):
        b.call("parse_term")
        b.mov(24, 3)
        loop = b.fresh_label("expr")
        done = b.fresh_label("expr_done")
        b.label(loop)
        b.call("peek_type")
        b.li(5, TK_PLUS)
        b.li(6, TK_MINUS)
        b.seq(7, 3, 5)
        b.seq(8, 3, 6)
        b.or_(7, 7, 8)
        b.beqz(7, done)
        b.call("advance")
        b.li(25, N_ADD)
        b.li(5, TK_MINUS)
        with if_cond(b, "eq", 3, 5):
            b.li(25, N_SUB)
        b.call("parse_term")
        b.mov(5, 3)
        b.mov(3, 25)
        b.mov(4, 24)
        b.call("new_node")
        b.mov(24, 3)
        b.j(loop)
        b.label(done)
        b.mov(3, 24)

    # ------------------------------------------------------------------
    # fold(r3 = node) -> r3 = node (children folded in place): if both
    # children of an operator node are N_NUM, rewrite it as N_NUM.
    # ------------------------------------------------------------------
    with b.function("fold", save=(24, 25)):
        b.mov(24, 3)
        b.ld(5, 24, 0)  # tag
        b.li(6, N_VAR)
        with if_cond(b, "geu", 5, 6):
            b.li(6, N_ADD)
            with if_cond(b, "geu", 5, 6):
                b.ld(3, 24, 8)
                b.call("fold")
                b.ld(3, 24, 16)
                b.call("fold")
                # both children literal?
                b.ld(5, 24, 8)
                b.ld(6, 5, 0)
                b.bnez(6, "__fold_out")
                b.ld(7, 24, 16)
                b.ld(8, 7, 0)
                b.bnez(8, "__fold_out")
                b.ld(9, 5, 8)  # left literal
                b.ld(10, 7, 8)  # right literal
                b.ld(11, 24, 0)  # this node's tag
                b.li(12, N_ADD)
                with if_cond(b, "eq", 11, 12):
                    b.add(9, 9, 10)
                    b.j("__fold_store")
                b.li(12, N_SUB)
                with if_cond(b, "eq", 11, 12):
                    b.sub(9, 9, 10)
                    b.j("__fold_store")
                b.mul(9, 9, 10)
                b.label("__fold_store")
                b.st(0, 24, 0)  # tag = N_NUM
                b.st(9, 24, 8)
                b.load_addr(5, "fold_count")
                b.ld(6, 5, 0)
                b.addi(6, 6, 1)
                b.st(6, 5, 0)
                b.label("__fold_out")
        b.mov(3, 24)

    # ------------------------------------------------------------------
    # eval(r3 = node) -> r3 = value (recursive tree walk).
    # ------------------------------------------------------------------
    with b.function("eval", save=(24, 25)):
        b.mov(24, 3)
        b.ld(5, 24, 0)
        c_num = b.fresh_label("e_num")
        c_var = b.fresh_label("e_var")
        c_add = b.fresh_label("e_add")
        c_sub = b.fresh_label("e_sub")
        c_mul = b.fresh_label("e_mul")
        b.jump_table(5, [c_num, c_var, c_add, c_sub, c_mul])
        b.label(c_num)
        b.ld(3, 24, 8)
        b.return_from_function()
        b.label(c_var)
        b.ld(5, 24, 8)
        b.load_addr(6, "variables")
        b.slli(5, 5, 3)
        b.add(6, 6, 5)
        b.ld(3, 6, 0)
        b.return_from_function()
        for label, op in ((c_add, "add"), (c_sub, "sub"), (c_mul, "mul")):
            b.label(label)
            b.ld(3, 24, 8)
            b.call("eval")
            b.mov(25, 3)
            b.ld(3, 24, 16)
            b.call("eval")
            getattr(b, op)(3, 25, 3)
            b.return_from_function()

    # ------------------------------------------------------------------
    # main: lex, then parse+fold+eval statement by statement.
    # r24 = destination variable index.
    # ------------------------------------------------------------------
    with b.function("main", save=(24,)):
        b.call("lex")
        loop = b.fresh_label("stmts")
        done = b.fresh_label("stmts_done")
        b.label(loop)
        b.call("peek_type")
        b.li(5, TK_EOF)
        b.beq(3, 5, done)
        b.call("advance")  # destination TK_ID
        b.mov(24, 4)
        b.call("advance")  # '='
        b.call("parse_expr")
        if fold_pass:
            b.call("fold")
        b.call("eval")
        b.load_addr(5, "variables")
        b.slli(6, 24, 3)
        b.add(5, 5, 6)
        b.st(3, 5, 0)
        b.call("advance")  # ';'
        # Release the statement's AST (compilers free per statement).
        b.load_addr(5, "arena_next")
        b.load_addr(6, "arena")
        b.st(6, 5, 0)
        b.j(loop)
        b.label(done)

    return b.build()
