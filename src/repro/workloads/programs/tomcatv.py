"""``tomcatv`` workload: vectorized mesh generation (Jacobi smoothing).

SPEC '92 tomcatv generates a 2-D mesh by iterative relaxation.  This
miniature smooths distorted x/y coordinate arrays with Jacobi sweeps
(paper input: "4 iterations (vs. 100)"), accumulating absolute
residuals as the real program does for its convergence test.  Every
coordinate is unique and moves every sweep, so load values essentially
never recur -- tomcatv is a paper poor-locality benchmark (0% constant
loads in Table 4), which this reproduces.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.isa.registers import FPR_BASE as F
from repro.workloads.support import Lcg

NAME = "tomcatv"
DESCRIPTION = "mesh relaxation (Jacobi sweeps with residuals)"
INPUT_DESCRIPTION = "distorted structured mesh, 4 iterations"
CATEGORY = "fp"
PAPER_INSTRUCTIONS = {"ppc": "30.0M", "alpha": "36.9M"}

ITERATIONS = 4  # the paper runs "4 iterations (vs. 100)"


def grid_size(scale: str = "small") -> int:
    """Mesh edge length at *scale*."""
    return {"tiny": 8, "small": 14, "reference": 26}[scale]


def initial_mesh(scale: str = "small") -> tuple[list[float], list[float]]:
    """(x, y) coordinates of a distorted structured mesh."""
    size = grid_size(scale)
    rng = Lcg(seed=0x70CA)
    xs, ys = [], []
    for i in range(size):
        for j in range(size):
            xs.append(j * 1.0 + rng.uniform(-0.3, 0.3))
            ys.append(i * 1.0 + rng.uniform(-0.3, 0.3))
    return xs, ys


def expected_mesh(scale: str = "small") -> tuple[list[float], list[float],
                                                 float]:
    """Reference (x, y, residual sum) -- bit-exact mirror."""
    size = grid_size(scale)
    xs, ys = initial_mesh(scale)
    new_x = list(xs)
    new_y = list(ys)
    residual = 0.0
    for _ in range(ITERATIONS):
        for i in range(1, size - 1):
            for j in range(1, size - 1):
                at = i * size + j
                rx = ((xs[at - 1] + xs[at + 1])
                      + (xs[at - size] + xs[at + size])) * 0.25
                ry = ((ys[at - 1] + ys[at + 1])
                      + (ys[at - size] + ys[at + size])) * 0.25
                residual = residual + abs(rx - xs[at])
                residual = residual + abs(ry - ys[at])
                new_x[at] = rx
                new_y[at] = ry
        xs, new_x = new_x, xs
        ys, new_y = new_y, ys
    return xs, ys, residual


def result_labels() -> tuple[str, str]:
    """Data labels of the buffers holding the final mesh."""
    if ITERATIONS % 2 == 0:
        return "mesh_x", "mesh_y"
    return "new_x", "new_y"


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the tomcatv program for *target* at *scale*."""
    size = grid_size(scale)
    xs, ys = initial_mesh(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("mesh_x")
    data.doubles(xs)
    data.label("mesh_y")
    data.doubles(ys)
    data.label("new_x")
    data.doubles(xs)
    data.label("new_y")
    data.doubles(ys)
    data.label("size")
    data.word(size)
    data.label("residual")
    data.double(0.0)
    data.label("quarter")
    data.double(0.25)

    # r22 = iters, r23 = &newy, r24 = &x, r25 = &y, r26 = &newx,
    # r27 = i, r28 = j, r29 = size; f8 = 0.25, f9 = residual.
    with b.function("main", save=(22, 23, 24, 25, 26, 27, 28, 29)):
        b.load_addr(24, "mesh_x")
        b.load_addr(25, "mesh_y")
        b.load_addr(26, "new_x")
        b.load_addr(23, "new_y")
        b.load_addr(4, "size")
        b.ld(29, 4, 0)
        b.load_addr(4, "residual")
        b.fld(F + 9, 4, 0)
        b.load_addr(4, "quarter")
        b.fld(F + 8, 4, 0)  # hoisted: tomcatv keeps it in a register
        b.li(22, ITERATIONS)
        it_loop = b.fresh_label("iter")
        it_done = b.fresh_label("iter_done")
        b.label(it_loop)
        b.beqz(22, it_done)
        b.li(27, 1)
        i_loop = b.fresh_label("i")
        i_done = b.fresh_label("i_done")
        b.label(i_loop)
        b.addi(5, 29, -1)
        b.bge(27, 5, i_done)
        b.li(28, 1)
        j_loop = b.fresh_label("j")
        j_done = b.fresh_label("j_done")
        b.label(j_loop)
        b.addi(5, 29, -1)
        b.bge(28, 5, j_done)
        b.mul(6, 27, 29)
        b.add(6, 6, 28)
        b.slli(6, 6, 3)
        b.slli(7, 29, 3)  # row stride (bytes)
        for src_reg, dst_reg in ((24, 26), (25, 23)):
            b.add(8, src_reg, 6)  # &field[at]
            b.fld(F + 1, 8, -8)  # west
            b.fld(F + 2, 8, 8)  # east
            b.sub(9, 8, 7)
            b.fld(F + 3, 9, 0)  # north
            b.add(9, 8, 7)
            b.fld(F + 4, 9, 0)  # south
            b.fadd(F + 1, F + 1, F + 2)
            b.fadd(F + 3, F + 3, F + 4)
            b.fadd(F + 1, F + 1, F + 3)
            b.fmul(F + 1, F + 1, F + 8)  # relaxed value
            b.fld(F + 5, 8, 0)  # old value
            b.fsub(F + 5, F + 1, F + 5)
            b.fabs_(F + 5, F + 5)
            b.fadd(F + 9, F + 9, F + 5)
            b.add(9, dst_reg, 6)
            b.fst(F + 1, 9, 0)
        b.addi(28, 28, 1)
        b.j(j_loop)
        b.label(j_done)
        b.addi(27, 27, 1)
        b.j(i_loop)
        b.label(i_done)
        # swap x<->newx, y<->newy
        b.mov(5, 24)
        b.mov(24, 26)
        b.mov(26, 5)
        b.mov(5, 25)
        b.mov(25, 23)
        b.mov(23, 5)
        b.addi(22, 22, -1)
        b.j(it_loop)
        b.label(it_done)
        b.load_addr(4, "residual")
        b.fst(F + 9, 4, 0)

    return b.build()
