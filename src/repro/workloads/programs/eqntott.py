"""``eqntott`` workload: boolean equation to truth table conversion.

SPEC '92 eqntott converts boolean equations into truth tables.  This
miniature evaluates a postfix boolean expression over every input
assignment, collecting the minterms (assignments where the expression
is true), then sorts them with the quadratic insertion sort that
dominates real eqntott profiles (its famous ``cmppt`` routine).  The
postfix program array is re-read for every assignment -- run-time
constant loads -- while the evaluation stack churns.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import Lcg, if_cond, scaled, while_loop

NAME = "eqntott"
DESCRIPTION = "boolean equation to sorted truth table"
INPUT_DESCRIPTION = "synthetic postfix boolean equation"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "25.5M", "alpha": "44.0M"}

# Postfix opcodes.
OP_VAR = 0  # push variable (operand = index)
OP_AND = 1
OP_OR = 2
OP_NOT = 3
OP_XOR = 4


def input_equation(scale: str = "small") -> tuple[int, list[tuple[int, int]]]:
    """Return (num_variables, postfix program) for the equation."""
    rng = Lcg(seed=0xE9)
    num_vars = 6 if scale == "tiny" else (7 if scale == "small" else 9)
    program = [(OP_VAR, 0), (OP_VAR, 1), (OP_AND, 0)]
    depth = 1
    # Grow a random expression keeping every variable involved.
    for var in range(2, num_vars):
        program.append((OP_VAR, var))
        depth += 1
        if rng.below(3) == 0:
            program.append((OP_NOT, 0))
        program.append((rng.choice((OP_AND, OP_OR, OP_XOR)), 0))
        depth -= 1
    for _ in range(scaled(scale, 3)):
        program.append((OP_VAR, rng.below(num_vars)))
        program.append((OP_VAR, rng.below(num_vars)))
        program.append((rng.choice((OP_AND, OP_OR, OP_XOR)), 0))
        program.append((rng.choice((OP_AND, OP_OR)), 0))
    return num_vars, program


def evaluate(program: list[tuple[int, int]], assignment: int) -> int:
    """Reference postfix evaluator (used by the test suite)."""
    stack: list[int] = []
    for op, operand in program:
        if op == OP_VAR:
            stack.append((assignment >> operand) & 1)
        elif op == OP_NOT:
            stack.append(stack.pop() ^ 1)
        else:
            b_val, a_val = stack.pop(), stack.pop()
            if op == OP_AND:
                stack.append(a_val & b_val)
            elif op == OP_OR:
                stack.append(a_val | b_val)
            else:
                stack.append(a_val ^ b_val)
    return stack.pop()


def expected_minterms(scale: str = "small") -> list[int]:
    """Reference sorted minterm list (used by the test suite)."""
    num_vars, program = input_equation(scale)
    return sorted(
        a for a in range(1 << num_vars) if evaluate(program, a)
    )


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the eqntott program for *target* at *scale*."""
    num_vars, program = input_equation(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("pt_ops")
    data.words([op for op, _ in program])
    data.label("pt_args")
    data.words([arg for _, arg in program])
    data.label("pt_len")
    data.word(len(program))
    data.label("num_vars")
    data.word(num_vars)
    data.label("minterms")
    data.space(1 << num_vars)
    data.label("num_minterms")
    data.word(0)
    data.label("stack")
    data.space(64)

    # ------------------------------------------------------------------
    # eval_pt(r3 = assignment bitmask) -> r3 = 0/1.
    # r4 = pc, r5 = stack top index, r6/r7 = table bases.
    # ------------------------------------------------------------------
    with b.function("eval_pt", leaf=True):
        b.load_addr(6, "pt_ops")
        b.load_addr(7, "pt_args")
        b.load_addr(8, "stack")
        b.load_addr(9, "pt_len")
        b.ld(9, 9, 0)
        b.li(4, 0)  # pc
        b.li(5, 0)  # stack height
        with while_loop(b) as (_, done):
            b.bge(4, 9, done)
            b.slli(10, 4, 3)
            b.add(11, 6, 10)
            b.ld(12, 11, 0)  # op -- constant per pc
            b.add(11, 7, 10)
            b.ld(13, 11, 0)  # arg -- constant per pc
            b.addi(4, 4, 1)
            with if_cond(b, "eq", 12, 0):  # OP_VAR: push bit
                b.srl(14, 3, 13)
                b.andi(14, 14, 1)
                b.slli(15, 5, 3)
                b.add(15, 8, 15)
                b.st(14, 15, 0)
                b.addi(5, 5, 1)
                b.j("__eval_next")
            b.li(14, OP_NOT)
            with if_cond(b, "eq", 12, 14):  # OP_NOT: flip top
                b.addi(15, 5, -1)
                b.slli(15, 15, 3)
                b.add(15, 8, 15)
                b.ld(16, 15, 0)
                b.xori(16, 16, 1)
                b.st(16, 15, 0)
                b.j("__eval_next")
            # binary op: pop two, push result
            b.addi(5, 5, -2)
            b.slli(15, 5, 3)
            b.add(15, 8, 15)
            b.ld(16, 15, 0)  # a
            b.ld(17, 15, 8)  # b
            b.li(14, OP_AND)
            with if_cond(b, "eq", 12, 14):
                b.and_(16, 16, 17)
                b.j("__eval_push")
            b.li(14, OP_OR)
            with if_cond(b, "eq", 12, 14):
                b.or_(16, 16, 17)
                b.j("__eval_push")
            b.xor(16, 16, 17)
            b.label("__eval_push")
            b.slli(15, 5, 3)
            b.add(15, 8, 15)
            b.st(16, 15, 0)
            b.addi(5, 5, 1)
            b.label("__eval_next")
        # result = stack[0]
        b.ld(3, 8, 0)

    # ------------------------------------------------------------------
    # insert_minterm(r3 = value): insertion sort into the minterm list
    # (eqntott's cmppt-style quadratic behaviour).
    # ------------------------------------------------------------------
    with b.function("insert_minterm", leaf=True):
        b.load_addr(4, "num_minterms")
        b.ld(5, 4, 0)
        b.load_addr(6, "minterms")
        # scan from the end, shifting larger elements right
        b.mov(7, 5)
        with while_loop(b) as (_, done):
            b.beqz(7, done)
            b.addi(8, 7, -1)
            b.slli(9, 8, 3)
            b.add(9, 6, 9)
            b.ld(10, 9, 0)
            b.bge(3, 10, done)  # found insertion point
            b.st(10, 9, 8)  # shift right
            b.mov(7, 8)
        b.slli(9, 7, 3)
        b.add(9, 6, 9)
        b.st(3, 9, 0)
        b.addi(5, 5, 1)
        b.st(5, 4, 0)

    # ------------------------------------------------------------------
    # main: enumerate assignments in a bit-reversed-ish order so the
    # insertion sort actually shuffles (matching eqntott's workload).
    # r24 = assignment counter, r25 = limit, r26 = permuted value.
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26)):
        b.load_addr(4, "num_vars")
        b.ld(5, 4, 0)
        b.li(25, 1)
        b.sll(25, 25, 5)  # 1 << num_vars
        b.li(24, 0)
        loop = b.fresh_label("assign")
        done = b.fresh_label("assign_done")
        b.label(loop)
        b.bge(24, 25, done)
        # permuted = (a * 037) mod 2^n  -- visits every assignment once
        b.li(6, 31)
        b.mul(26, 24, 6)
        b.addi(7, 25, -1)
        b.and_(26, 26, 7)
        b.mov(3, 26)
        b.call("eval_pt")
        with if_cond(b, "ne", 3, 0):
            b.mov(3, 26)
            b.call("insert_minterm")
        b.addi(24, 24, 1)
        b.j(loop)
        b.label(done)

    return b.build()
