"""``grep`` workload: count lines matching a pattern (gnu-grep -c "st*mo").

Scans the same synthetic text input as ``compress`` (as the paper does)
line by line, counting lines that contain ``st`` followed -- anywhere
later on the line -- by ``mo``.  The scanner is Boyer-Moore-Horspool,
as in GNU grep: the inner loop is ``cursor += skip[text[cursor]]`` -- a
serial load-to-address recurrence whose loaded skip values are almost
always the pattern length.  That chain is why grep is "data-dependence
bound" and why the paper sees its most dramatic LVP speedups here:
predicting the (nearly constant) skip-table loads collapses the
recurrence entirely.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import Lcg, if_cond, make_text, scaled, while_loop

NAME = "grep"
DESCRIPTION = "pattern scan, counting matching lines"
INPUT_DESCRIPTION = 'same text as compress; pattern "st*mo"'
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "2.3M", "alpha": "2.9M"}


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the grep program for *target* at *scale*."""
    rng = Lcg(seed=0xC0131)  # same seed as compress: same input
    text = make_text(rng, num_words=scaled(scale, 260))

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("input")
    data.bytes_(text)
    data.label("input_len")
    data.word(len(text))
    data.label("match_count")
    data.word(0)
    # Boyer-Moore-Horspool skip tables, one per 2-byte literal.  For a
    # pattern "xy": skip[y at pattern end position] handled by explicit
    # last-byte check; skip[x] = 1; everything else = 2.  The table
    # loads are almost always 2 -- run-time near-constants.
    for label, pattern in (("skip_st", b"st"), ("skip_mo", b"mo")):
        skip = [2] * 256
        skip[pattern[0]] = 1
        data.label(label)
        data.words(skip)
    data.label("pat_st")
    data.bytes_(b"st", terminate=True)
    data.label("pat_mo")
    data.bytes_(b"mo", terminate=True)

    # ------------------------------------------------------------------
    # find2(r3=line start, r4=line end, r5=skip table, r6=pattern ptr)
    # -> r3 = position just past the first occurrence of the 2-byte
    # pattern, or 0 if not found.  Boyer-Moore-Horspool: align the
    # window on its LAST byte and advance by the loaded skip distance
    # (the load-to-address recurrence at grep's heart).
    # ------------------------------------------------------------------
    with b.function("find2", leaf=True):
        b.addi(3, 3, 1)  # cursor = index of the window's last byte
        with while_loop(b) as (_, done):
            b.bgeu(3, 4, done)
            b.lbu(8, 3, 0)  # text byte under the window end
            b.lbu(10, 6, 1)  # pattern's last byte -- constant
            with if_cond(b, "eq", 8, 10):
                b.lbu(9, 3, -1)
                b.lbu(10, 6, 0)  # pattern's first byte -- constant
                with if_cond(b, "eq", 9, 10):
                    b.addi(3, 3, 1)
                    b.return_from_function()
            # cursor += skip[text byte]  (near-constant loaded value)
            b.slli(8, 8, 3)
            b.add(8, 5, 8)
            b.ld(8, 8, 0)
            b.add(3, 3, 8)
        b.li(3, 0)

    # ------------------------------------------------------------------
    # match_line(r3=start, r4=end) -> r3 = 1 if line matches "st*mo".
    # r24/r25 hold the line bounds across the nested find2 calls.
    # ------------------------------------------------------------------
    with b.function("match_line", save=(24, 25)):
        b.mov(24, 3)
        b.mov(25, 4)
        b.load_addr(5, "skip_st")
        b.load_addr(6, "pat_st")
        b.call("find2")
        with if_cond(b, "eq", 3, 0):
            b.li(3, 0)
            b.return_from_function()
        b.mov(4, 25)
        b.load_addr(5, "skip_mo")
        b.load_addr(6, "pat_mo")
        b.call("find2")
        b.sltu(3, 0, 3)  # 1 if found (r3 != 0)

    # ------------------------------------------------------------------
    # main: split input into lines, count matches.
    # r24 = cursor, r25 = input end, r26 = line start, r27 = matches
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26, 27)):
        b.load_addr(24, "input")
        b.load_addr(4, "input_len")
        b.ld(5, 4, 0)
        b.add(25, 24, 5)
        b.mov(26, 24)
        b.li(27, 0)
        with while_loop(b) as (_, done):
            b.bgeu(24, 25, done)
            b.lbu(6, 24, 0)
            b.addi(24, 24, 1)
            b.li(7, ord("\n"))
            with if_cond(b, "eq", 6, 7):
                b.mov(3, 26)
                b.addi(4, 24, -1)  # exclude the newline
                b.call("match_line")
                b.add(27, 27, 3)
                b.mov(26, 24)
        # handle a final unterminated line
        with if_cond(b, "ltu", 26, 25):
            b.mov(3, 26)
            b.mov(4, 25)
            b.call("match_line")
            b.add(27, 27, 3)
        b.load_addr(4, "match_count")
        b.st(27, 4, 0)

    return b.build()


def expected_matches(scale: str = "small") -> int:
    """Reference answer computed in Python (used by the test suite)."""
    rng = Lcg(seed=0xC0131)
    text = make_text(rng, num_words=scaled(scale, 260))
    count = 0
    for line in text.split(b"\n"):
        st = line.find(b"st")
        if st >= 0 and line.find(b"mo", st + 2) >= 0:
            count += 1
    return count
