"""``mpeg`` workload: MPEG-style block decoder (dequant + IDCT + dither).

The Berkeley MPEG decoder's per-block work: dequantize sparse
coefficient blocks, inverse-transform them (fixed-point matrix
multiplies with zero-row skipping, as real decoders do), clamp through
a saturation table, and apply ordered dithering.  Sparse coefficients
mean most dequant loads return zero and the clamp/dither tables repeat
-- the redundancy that gives mpeg its decent paper value locality.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.programs._dsp import emit_matmul8
from repro.workloads.support import Lcg, if_cond, scaled

NAME = "mpeg"
DESCRIPTION = "MPEG-style block decoder (dequant, IDCT, dither)"
INPUT_DESCRIPTION = "sparse synthetic coefficient blocks (4 frames)"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "8.8M", "alpha": "15.1M"}

from repro.workloads.programs._dsp import dct_matrix
from repro.workloads.programs.cjpeg import QUANT

DCT = dct_matrix()

DITHER = [0, 8, 2, 10, 12, 4, 14, 6, 3, 11, 1, 9, 15, 7, 13, 5]


def input_blocks(scale: str = "small") -> list[list[int]]:
    """Sparse 8x8 coefficient blocks (about 7 nonzero each)."""
    rng = Lcg(seed=0x3BE6)
    blocks = []
    for _ in range(scaled(scale, 4)):
        block = [0] * 64
        block[0] = 400 + rng.below(400)  # DC
        for _ in range(6):
            position = rng.below(20)  # low-frequency corner
            block[position] = rng.below(60) - 30
        blocks.append(block)
    return blocks


def _s_wrap(x: int) -> int:
    return x & ((1 << 64) - 1)


def expected_checksum(scale: str = "small") -> int:
    """Reference pixel checksum -- mirrors the program exactly."""
    blocks = input_blocks(scale)
    checksum = 0
    for block in blocks:
        dequant = [0] * 64
        row_nonzero = [0] * 8
        for i in range(64):
            value = (block[i] * QUANT[i]) >> 3
            dequant[i] = value
            if value != 0:
                row_nonzero[i // 8] = 1
        # tmp = DCT^T x dequant, skipping all-zero rows of dequant
        tmp = [0] * 64
        for i in range(8):
            for j in range(8):
                acc = 0
                for k in range(8):
                    if row_nonzero[k]:
                        acc += DCT[k * 8 + i] * dequant[k * 8 + j]
                tmp[i * 8 + j] = acc >> 8
        out = [0] * 64
        for i in range(8):
            for j in range(8):
                acc = sum(tmp[i * 8 + k] * DCT[k * 8 + j] for k in range(8))
                out[i * 8 + j] = acc >> 8
        for i in range(8):
            for j in range(8):
                value = out[i * 8 + j] + 128
                assert -2048 <= value < 2048, "clamp table range exceeded"
                value = 0 if value < 0 else (255 if value > 255 else value)
                pixel = value + DITHER[(i & 3) * 4 + (j & 3)]
                checksum = _s_wrap(checksum * 31 + pixel)
    return checksum


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the mpeg program for *target* at *scale*."""
    blocks = input_blocks(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    flat = [v & ((1 << 64) - 1) for block in blocks for v in block]
    data.label("coeffs")
    data.words(flat)
    data.label("num_blocks")
    data.word(len(blocks))
    data.label("dct")
    data.words([v & ((1 << 64) - 1) for v in DCT])
    data.label("quant")
    data.words(QUANT)
    data.label("dither")
    data.words(DITHER)
    # Saturation table: clamp(v) for v in -2048..2047, biased by +2048.
    clamp = [0 if v < 0 else (255 if v > 255 else v)
             for v in range(-2048, 2048)]
    data.label("clamp")
    data.words(clamp)
    data.label("dequant_buf")
    data.space(64)
    data.label("row_flags")
    data.space(8)
    data.label("tmp")
    data.space(64)
    data.label("out")
    data.space(64)
    data.label("checksum")
    data.word(0)

    # ------------------------------------------------------------------
    # decode_block(r3 = block base ptr).
    # r24 = block ptr.
    # ------------------------------------------------------------------
    with b.function("decode_block", save=(24,)):
        b.mov(24, 3)
        # dequant + row flags
        b.load_addr(5, "quant")
        b.load_addr(6, "dequant_buf")
        b.load_addr(7, "row_flags")
        b.li(8, 0)
        flag_loop = b.fresh_label("fl")
        flag_done = b.fresh_label("fl_done")
        b.label(flag_loop)
        b.li(13, 8)
        b.bge(8, 13, flag_done)
        b.slli(9, 8, 3)
        b.add(9, 7, 9)
        b.st(0, 9, 0)
        b.addi(8, 8, 1)
        b.j(flag_loop)
        b.label(flag_done)
        b.li(8, 0)
        dq_loop = b.fresh_label("dq")
        dq_done = b.fresh_label("dq_done")
        b.label(dq_loop)
        b.li(13, 64)
        b.bge(8, 13, dq_done)
        b.slli(9, 8, 3)
        b.add(10, 24, 9)
        b.ld(11, 10, 0)  # coefficient -- mostly zero
        b.add(10, 5, 9)
        b.ld(12, 10, 0)  # quant entry -- constant
        b.mul(11, 11, 12)
        b.srai(11, 11, 3)
        b.add(10, 6, 9)
        b.st(11, 10, 0)
        with if_cond(b, "ne", 11, 0):
            b.srli(12, 8, 3)  # row index
            b.slli(12, 12, 3)
            b.add(12, 7, 12)
            b.li(14, 1)
            b.st(14, 12, 0)
        b.addi(8, 8, 1)
        b.j(dq_loop)
        b.label(dq_done)
        # tmp[i][j] = sum_k DCT[k][i] * dequant[k][j]  (skip zero rows)
        b.load_addr(3, "dct")
        b.load_addr(4, "dequant_buf")
        b.load_addr(5, "tmp")
        b.li(7, 0)  # i
        i_loop = b.fresh_label("ii")
        i_done = b.fresh_label("ii_done")
        b.label(i_loop)
        b.li(13, 8)
        b.bge(7, 13, i_done)
        b.li(8, 0)  # j
        j_loop = b.fresh_label("jj")
        j_done = b.fresh_label("jj_done")
        b.label(j_loop)
        b.li(13, 8)
        b.bge(8, 13, j_done)
        b.li(9, 0)  # acc
        b.li(10, 0)  # k
        k_loop = b.fresh_label("kk")
        k_done = b.fresh_label("kk_done")
        b.label(k_loop)
        b.li(13, 8)
        b.bge(10, 13, k_done)
        b.load_addr(14, "row_flags")
        b.slli(15, 10, 3)
        b.add(14, 14, 15)
        b.ld(14, 14, 0)  # row flag -- mostly zero/one pattern
        with if_cond(b, "ne", 14, 0):
            b.slli(11, 10, 3)
            b.add(11, 11, 7)
            b.slli(11, 11, 3)
            b.add(11, 3, 11)
            b.ld(14, 11, 0)  # DCT[k][i]
            b.slli(11, 10, 3)
            b.add(11, 11, 8)
            b.slli(11, 11, 3)
            b.add(11, 4, 11)
            b.ld(15, 11, 0)  # dequant[k][j]
            b.mul(14, 14, 15)
            b.add(9, 9, 14)
        b.addi(10, 10, 1)
        b.j(k_loop)
        b.label(k_done)
        b.srai(9, 9, 8)
        b.slli(11, 7, 3)
        b.add(11, 11, 8)
        b.slli(11, 11, 3)
        b.add(11, 5, 11)
        b.st(9, 11, 0)
        b.addi(8, 8, 1)
        b.j(j_loop)
        b.label(j_done)
        b.addi(7, 7, 1)
        b.j(i_loop)
        b.label(i_done)
        # out = tmp x DCT (second pass, dense) -- reuse cjpeg's matmul
        b.load_addr(3, "tmp")
        b.load_addr(4, "dct")
        b.load_addr(5, "out")
        b.li(6, 0)
        b.call_far("matmul8")
        # clamp + dither + checksum
        b.load_addr(5, "out")
        b.load_addr(6, "clamp")
        b.load_addr(7, "dither")
        b.load_addr(14, "checksum")
        b.ld(15, 14, 0)
        b.li(8, 0)  # i
        p_loop = b.fresh_label("pp")
        p_done = b.fresh_label("pp_done")
        b.label(p_loop)
        b.li(13, 64)
        b.bge(8, 13, p_done)
        b.slli(9, 8, 3)
        b.add(9, 5, 9)
        b.ld(10, 9, 0)
        b.addi(10, 10, 128 + 2048)  # bias into clamp-table range
        b.slli(10, 10, 3)
        b.add(10, 6, 10)
        b.ld(10, 10, 0)  # clamped value -- saturation table
        # dither index: (i>>3 & 3)*4 + (i & 3)
        b.srli(11, 8, 3)
        b.andi(11, 11, 3)
        b.slli(11, 11, 2)
        b.andi(12, 8, 3)
        b.add(11, 11, 12)
        b.slli(11, 11, 3)
        b.add(11, 7, 11)
        b.ld(11, 11, 0)  # dither entry -- small repeating table
        b.add(10, 10, 11)
        b.li(13, 31)
        b.mul(15, 15, 13)
        b.add(15, 15, 10)
        b.addi(8, 8, 1)
        b.j(p_loop)
        b.label(p_done)
        b.st(15, 14, 0)

    emit_matmul8(b)

    # ------------------------------------------------------------------
    # main: iterate blocks.
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26)):
        b.load_addr(24, "coeffs")
        b.load_addr(4, "num_blocks")
        b.ld(25, 4, 0)
        b.li(26, 0)
        loop = b.fresh_label("blocks")
        done = b.fresh_label("blocks_done")
        b.label(loop)
        b.bge(26, 25, done)
        b.mov(3, 24)
        b.call("decode_block")
        b.addi(24, 24, 64 * 8)
        b.addi(26, 26, 1)
        b.j(loop)
        b.label(done)

    return b.build()
