"""``quick`` workload: recursive quicksort of random elements.

A direct miniature of the paper's "Quick sort: 5,000 random elements"
benchmark.  Deep recursion exercises the prologue/epilogue link-register
and callee-saved-register loads ("call-subgraph identities"), while the
random data itself offers almost no value locality -- the paper's
Table 4 shows quick with 0% constant loads, which this reproduces.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import Lcg, if_cond, scaled, while_loop

NAME = "quick"
DESCRIPTION = "recursive quicksort"
INPUT_DESCRIPTION = "uniform random 64-bit integers"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "688K", "alpha": "1.1M"}


def input_values(scale: str = "small") -> list[int]:
    """The array the benchmark sorts (bounded so values stay signed-safe)."""
    rng = Lcg(seed=0x9019)
    count = scaled(scale, 600)
    return [rng.below(1 << 32) for _ in range(count)]


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the quicksort program for *target* at *scale*."""
    values = input_values(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("array")
    data.words(values)
    data.label("count")
    data.word(len(values))

    # ------------------------------------------------------------------
    # qsort(r3 = lo index, r4 = hi index): Lomuto partition, recursive.
    # r24 = lo, r25 = hi, r26 = base pointer, r27 = store index,
    # r28 = pivot value, r29 = scan index.
    # ------------------------------------------------------------------
    with b.function("qsort", save=(24, 25, 26, 27, 28, 29)):
        with if_cond(b, "ge", 3, 4):
            b.return_from_function()
        b.mov(24, 3)
        b.mov(25, 4)
        b.load_addr(26, "array")
        # pivot = array[hi]
        b.slli(5, 25, 3)
        b.add(5, 26, 5)
        b.ld(28, 5, 0)
        b.mov(27, 24)  # store index i
        b.mov(29, 24)  # scan index j
        with while_loop(b) as (_, done):
            b.bge(29, 25, done)
            b.slli(5, 29, 3)
            b.add(5, 26, 5)
            b.ld(6, 5, 0)  # array[j]
            with if_cond(b, "lt", 6, 28):
                # swap array[i], array[j]
                b.slli(7, 27, 3)
                b.add(7, 26, 7)
                b.ld(8, 7, 0)
                b.st(6, 7, 0)
                b.st(8, 5, 0)
                b.addi(27, 27, 1)
            b.addi(29, 29, 1)
        # swap array[i], array[hi] (pivot into place)
        b.slli(5, 27, 3)
        b.add(5, 26, 5)
        b.ld(6, 5, 0)
        b.slli(7, 25, 3)
        b.add(7, 26, 7)
        b.st(6, 7, 0)
        b.st(28, 5, 0)
        # recurse left: qsort(lo, i-1)
        b.mov(3, 24)
        b.addi(4, 27, -1)
        b.call("qsort")
        # recurse right: qsort(i+1, hi)
        b.addi(3, 27, 1)
        b.mov(4, 25)
        b.call("qsort")

    with b.function("main"):
        b.li(3, 0)
        b.load_addr(4, "count")
        b.ld(4, 4, 0)
        b.addi(4, 4, -1)
        b.call("qsort")

    return b.build()
