"""``doduc`` workload: Monte-Carlo-free reactor kinetics kernel.

SPEC '92 doduc simulates a nuclear reactor's thermo-hydraulics.  This
miniature advances a vector of channel states through explicit Euler
steps; each channel classifies its state against threshold constants
(loaded from memory every iteration, as Fortran COMMON reads compile
to) and pulls a region-dependent rate coefficient from a small table.
The thresholds and coefficients load with perfect value locality while
the evolving state loads with almost none -- the mix behind doduc's
mid-range paper locality.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.isa.registers import FPR_BASE as F
from repro.workloads.support import Lcg, scaled

NAME = "doduc"
DESCRIPTION = "reactor kinetics (explicit Euler over channels)"
INPUT_DESCRIPTION = "synthetic channel states, tiny SPEC-style input"
CATEGORY = "fp"
PAPER_INSTRUCTIONS = {"ppc": "35.8M", "alpha": "38.5M"}

THRESHOLDS = (0.35, 0.65, 0.9)
COEFFS = (0.12, 0.45, 0.8, 1.1)
DT = 0.01
DECAY = 0.6
KAPPA = 0.05  # nearest-neighbour channel coupling


def initial_state(scale: str = "small") -> list[float]:
    """Starting channel temperatures in (0, 1)."""
    rng = Lcg(seed=0xD0D)
    count = scaled(scale, 48)
    return [rng.uniform(0.05, 1.2) for _ in range(count)]


def steps(scale: str = "small") -> int:
    """Number of Euler steps at *scale*."""
    return scaled(scale, 40)


def expected_state(scale: str = "small") -> tuple[list[float], float]:
    """Reference (final states, energy sum) -- bit-exact mirror."""
    state = initial_state(scale)
    energy = 0.0
    for _ in range(steps(scale)):
        for i in range(1, len(state)):
            x = state[i]
            if x < THRESHOLDS[0]:
                coeff = COEFFS[0]
            elif x < THRESHOLDS[1]:
                coeff = COEFFS[1]
            elif x < THRESHOLDS[2]:
                coeff = COEFFS[2]
            else:
                coeff = COEFFS[3]
            x = x + DT * (coeff - x * DECAY)
            x = x + KAPPA * (state[i - 1] - x)
            state[i] = x
            energy = energy + x
    return state, energy


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the doduc program for *target* at *scale*."""
    state = initial_state(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("state")
    data.doubles(state)
    data.label("count")
    data.word(len(state))
    data.label("nsteps")
    data.word(steps(scale))
    data.label("thresholds")
    data.doubles(THRESHOLDS)
    data.label("coeffs")
    data.doubles(COEFFS)
    data.label("dt")
    data.double(DT)
    data.label("decay")
    data.double(DECAY)
    data.label("kappa")
    data.double(KAPPA)
    data.label("energy")
    data.double(0.0)

    # FP register plan: f1=x, f2=threshold scratch, f3=coeff, f4=dt,
    # f5=decay, f6=energy, f7=temp.
    with b.function("main", save=(24, 25, 26, 27)):
        b.load_addr(24, "state")
        b.load_addr(4, "count")
        b.ld(25, 4, 0)
        b.load_addr(4, "nsteps")
        b.ld(26, 4, 0)
        b.load_addr(4, "energy")
        b.fld(F + 6, 4, 0)
        # dt/decay/kappa are loop-invariant; the compiler hoists them.
        b.load_addr(4, "dt")
        b.fld(F + 4, 4, 0)
        b.load_addr(4, "decay")
        b.fld(F + 5, 4, 0)
        b.load_addr(4, "kappa")
        b.fld(F + 8, 4, 0)
        step_loop = b.fresh_label("step")
        step_done = b.fresh_label("step_done")
        b.label(step_loop)
        b.beqz(26, step_done)
        b.li(27, 1)  # channel index (0 is the inlet boundary)
        ch_loop = b.fresh_label("chan")
        ch_done = b.fresh_label("chan_done")
        b.label(ch_loop)
        b.bge(27, 25, ch_done)
        b.slli(5, 27, 3)
        b.add(5, 24, 5)
        b.fld(F + 1, 5, 0)  # x -- evolving state
        # classify against thresholds (reloaded from memory: Fortran
        # COMMON block reads).
        b.load_addr(6, "thresholds")
        b.load_addr(7, "coeffs")
        labels = [b.fresh_label(f"r{k}") for k in range(4)]
        done_cls = b.fresh_label("classified")
        for region in range(3):
            b.fld(F + 2, 6, region * 8)  # threshold -- constant
            b.flt(8, F + 1, F + 2)
            b.bnez(8, labels[region])
        b.label(labels[3])
        b.fld(F + 3, 7, 24)
        b.j(done_cls)
        for region in range(3):
            b.label(labels[region])
            b.fld(F + 3, 7, region * 8)  # coefficient -- small table
            if region != 2:
                b.j(done_cls)
        b.label(done_cls)
        # x = x + dt * (coeff - x*decay)
        b.fmul(F + 7, F + 1, F + 5)
        b.fsub(F + 7, F + 3, F + 7)
        b.fmul(F + 7, F + 4, F + 7)
        b.fadd(F + 1, F + 1, F + 7)
        # x = x + kappa * (x[i-1] - x)   (neighbour coupling)
        b.fld(F + 7, 5, -8)
        b.fsub(F + 7, F + 7, F + 1)
        b.fmul(F + 7, F + 8, F + 7)
        b.fadd(F + 1, F + 1, F + 7)
        b.fst(F + 1, 5, 0)
        b.fadd(F + 6, F + 6, F + 1)
        b.addi(27, 27, 1)
        b.j(ch_loop)
        b.label(ch_done)
        b.addi(26, 26, -1)
        b.j(step_loop)
        b.label(step_done)
        b.load_addr(4, "energy")
        b.fst(F + 6, 4, 0)

    return b.build()
