"""``swm256`` workload: shallow water model (5 iterations, as the paper).

SPEC '92 swm256 integrates the shallow-water equations.  This miniature
advances staggered u/v/p fields with the same structure of neighbour
differences; every field value varies smoothly in space and changes
every timestep, so loads essentially never repeat -- swm256 is one of
the paper's three poor-locality benchmarks, and this reproduces that.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.isa.registers import FPR_BASE as F

NAME = "swm256"
DESCRIPTION = "shallow water model (u/v/p field updates)"
INPUT_DESCRIPTION = "smoothly-varying initial fields, 5 iterations"
CATEGORY = "fp"
PAPER_INSTRUCTIONS = {"ppc": "43.7M", "alpha": "54.8M"}

ITERATIONS = 5  # the paper runs "5 iterations (vs. 1,200)"
C_U = 0.12
C_V = 0.09
C_P = 0.07


def grid_size(scale: str = "small") -> int:
    """Grid edge length at *scale*."""
    return {"tiny": 8, "small": 14, "reference": 26}[scale]


def initial_fields(scale: str = "small") -> tuple[list[float], ...]:
    """(u, v, p) row-major fields; smooth, everywhere-distinct values."""
    size = grid_size(scale)
    u, v, p = [], [], []
    for i in range(size):
        for j in range(size):
            u.append(0.1 * i + 0.07 * j + 0.003 * i * j)
            v.append(0.08 * i - 0.05 * j + 0.002 * j * j)
            p.append(10.0 + 0.2 * i + 0.15 * j + 0.001 * i * i)
    return u, v, p


def expected_fields(scale: str = "small") -> tuple[list[float], ...]:
    """Reference final fields -- bit-exact mirror of the program."""
    size = grid_size(scale)
    u, v, p = (list(f) for f in initial_fields(scale))
    for _ in range(ITERATIONS):
        for i in range(1, size - 1):
            for j in range(1, size - 1):
                at = i * size + j
                u[at] = u[at] + C_U * (p[at] - p[at + 1])
                v[at] = v[at] + C_V * (p[at] - p[at + size])
                p[at] = p[at] - C_P * ((u[at] - u[at - 1])
                                       + (v[at] - v[at - size]))
    return u, v, p


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the swm256 program for *target* at *scale*."""
    size = grid_size(scale)
    u, v, p = initial_fields(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("u")
    data.doubles(u)
    data.label("v")
    data.doubles(v)
    data.label("p")
    data.doubles(p)
    data.label("size")
    data.word(size)
    data.label("c_u")
    data.double(C_U)
    data.label("c_v")
    data.double(C_V)
    data.label("c_p")
    data.double(C_P)

    # r24 = &u, r25 = &v, r26 = &p, r27 = i, r28 = j, r29 = size,
    # r23 = iteration counter (saved), f1..f7 scratch,
    # f10 = C_U, f11 = C_V, f12 = C_P (reloaded per point -- spilled).
    with b.function("main", save=(23, 24, 25, 26, 27, 28, 29)):
        b.load_addr(24, "u")
        b.load_addr(25, "v")
        b.load_addr(26, "p")
        b.load_addr(4, "size")
        b.ld(29, 4, 0)
        b.li(23, ITERATIONS)
        it_loop = b.fresh_label("iter")
        it_done = b.fresh_label("iter_done")
        b.label(it_loop)
        b.beqz(23, it_done)
        b.li(27, 1)
        i_loop = b.fresh_label("i")
        i_done = b.fresh_label("i_done")
        b.label(i_loop)
        b.addi(5, 29, -1)
        b.bge(27, 5, i_done)
        b.li(28, 1)
        j_loop = b.fresh_label("j")
        j_done = b.fresh_label("j_done")
        b.label(j_loop)
        b.addi(5, 29, -1)
        b.bge(28, 5, j_done)
        b.mul(6, 27, 29)
        b.add(6, 6, 28)
        b.slli(6, 6, 3)  # byte offset of [i][j]
        b.slli(7, 29, 3)  # row stride
        b.add(8, 24, 6)  # &u[at]
        b.add(9, 25, 6)  # &v[at]
        b.add(10, 26, 6)  # &p[at]
        # The physics constants live in COMMON; with every FP register
        # carrying field values they are reloaded per point (spills).
        b.load_addr(12, "c_u")
        b.fld(F + 10, 12, 0)
        b.load_addr(12, "c_v")
        b.fld(F + 11, 12, 0)
        b.load_addr(12, "c_p")
        b.fld(F + 12, 12, 0)
        # u[at] += C_U * (p[at] - p[at+1])
        b.fld(F + 1, 10, 0)
        b.fld(F + 2, 10, 8)
        b.fsub(F + 1, F + 1, F + 2)
        b.fmul(F + 1, F + 10, F + 1)
        b.fld(F + 2, 8, 0)
        b.fadd(F + 2, F + 2, F + 1)
        b.fst(F + 2, 8, 0)
        # v[at] += C_V * (p[at] - p[at+size])
        b.fld(F + 1, 10, 0)
        b.add(11, 10, 7)
        b.fld(F + 3, 11, 0)
        b.fsub(F + 1, F + 1, F + 3)
        b.fmul(F + 1, F + 11, F + 1)
        b.fld(F + 3, 9, 0)
        b.fadd(F + 3, F + 3, F + 1)
        b.fst(F + 3, 9, 0)
        # p[at] -= C_P * ((u[at] - u[at-1]) + (v[at] - v[at-size]))
        b.fld(F + 4, 8, 0)
        b.fld(F + 5, 8, -8)
        b.fsub(F + 4, F + 4, F + 5)
        b.fld(F + 5, 9, 0)
        b.sub(11, 9, 7)
        b.fld(F + 6, 11, 0)
        b.fsub(F + 5, F + 5, F + 6)
        b.fadd(F + 4, F + 4, F + 5)
        b.fmul(F + 4, F + 12, F + 4)
        b.fld(F + 7, 10, 0)
        b.fsub(F + 7, F + 7, F + 4)
        b.fst(F + 7, 10, 0)
        b.addi(28, 28, 1)
        b.j(j_loop)
        b.label(j_done)
        b.addi(27, 27, 1)
        b.j(i_loop)
        b.label(i_done)
        b.addi(23, 23, -1)
        b.j(it_loop)
        b.label(it_done)

    return b.build()
