"""``cjpeg`` workload: JPEG-style encoder (DCT + quantize + RLE).

The forward path of a JPEG encoder over a synthetic grayscale image:
8x8 blocks are level-shifted, transformed with an integer DCT
(fixed-point matrix multiplies), quantized, zigzag-scanned, and
run-length encoded.  Pixel data is fresh on every load, which is why
the paper finds cjpeg to be one of its three poor-locality benchmarks;
only the quantization and zigzag tables load repeating values.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.programs._dsp import dct_matrix, emit_matmul8
from repro.workloads.support import Lcg, if_cond

NAME = "cjpeg"
DESCRIPTION = "JPEG-style encoder (integer DCT, quantize, RLE)"
INPUT_DESCRIPTION = "synthetic grayscale image"
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "2.8M", "alpha": "10.7M"}

IMAGE_SIZE = {"tiny": 8, "small": 16, "reference": 32}

#: Standard JPEG luminance quantization table (ITU T.81 Annex K).
QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

#: Zigzag scan order.
ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


DCT = dct_matrix()


def input_image(scale: str = "small") -> list[int]:
    """Synthetic image: smooth gradient plus noise, row-major bytes."""
    size = IMAGE_SIZE[scale]
    rng = Lcg(seed=0x79E6)
    pixels = []
    for y in range(size):
        for x in range(size):
            value = (x * 5 + y * 3 + ((x * y) >> 2)) & 0xFF
            value = (value + rng.below(32)) & 0xFF
            pixels.append(value)
    return pixels


def _tdiv(a: int, b: int) -> int:
    """Truncating division (matches the ISA's DIV)."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _s64(x: int) -> int:
    return x - (1 << 64) if x >= (1 << 63) else x


def expected_output(scale: str = "small") -> tuple[int, int]:
    """Reference (rle_pair_count, checksum) -- mirrors the program."""
    size = IMAGE_SIZE[scale]
    pixels = input_image(scale)
    pairs = 0
    checksum = 0
    for by in range(0, size, 8):
        for bx in range(0, size, 8):
            block = [
                pixels[(by + i) * size + (bx + j)] - 128
                for i in range(8) for j in range(8)
            ]
            # tmp = DCT x block
            tmp = [0] * 64
            for i in range(8):
                for j in range(8):
                    acc = sum(DCT[i * 8 + k] * block[k * 8 + j]
                              for k in range(8))
                    tmp[i * 8 + j] = acc >> 8
            # out = tmp x DCT^T
            out = [0] * 64
            for i in range(8):
                for j in range(8):
                    acc = sum(tmp[i * 8 + k] * DCT[j * 8 + k]
                              for k in range(8))
                    out[i * 8 + j] = acc >> 8
            quant = [_tdiv(out[i], QUANT[i]) for i in range(64)]
            # zigzag + RLE
            run = 0
            for index in ZIGZAG:
                value = quant[index]
                if value == 0:
                    run += 1
                else:
                    pairs += 1
                    checksum = (checksum * 31 + run + value) & ((1 << 64) - 1)
                    run = 0
            pairs += 1
            checksum = (checksum * 31 + run) & ((1 << 64) - 1)
    return pairs, checksum


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the cjpeg program for *target* at *scale*."""
    size = IMAGE_SIZE[scale]
    pixels = input_image(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("image")
    data.bytes_(bytes(pixels))
    data.label("size")
    data.word(size)
    data.label("dct")
    data.words([v & ((1 << 64) - 1) for v in DCT])
    data.label("quant")
    data.words(QUANT)
    data.label("zigzag")
    data.words(ZIGZAG)
    data.label("block")
    data.space(64)
    data.label("tmp")
    data.space(64)
    data.label("out")
    data.space(64)
    data.label("pairs")
    data.word(0)
    data.label("checksum")
    data.word(0)

    emit_matmul8(b)

    # ------------------------------------------------------------------
    # encode_block(r3 = block x, r4 = block y): full per-block pipeline.
    # r24 = bx, r25 = by.
    # ------------------------------------------------------------------
    with b.function("encode_block", save=(24, 25, 26)):
        b.mov(24, 3)
        b.mov(25, 4)
        # load pixels, level shift
        b.load_addr(5, "image")
        b.load_addr(6, "size")
        b.ld(6, 6, 0)
        b.load_addr(7, "block")
        b.li(8, 0)  # i
        row_loop = b.fresh_label("px_i")
        row_done = b.fresh_label("px_i_done")
        b.label(row_loop)
        b.li(13, 8)
        b.bge(8, 13, row_done)
        b.li(9, 0)  # j
        col_loop = b.fresh_label("px_j")
        col_done = b.fresh_label("px_j_done")
        b.label(col_loop)
        b.li(13, 8)
        b.bge(9, 13, col_done)
        b.add(10, 25, 8)  # y
        b.mul(10, 10, 6)
        b.add(10, 10, 24)
        b.add(10, 10, 9)  # pixel index
        b.add(10, 5, 10)
        b.lbu(11, 10, 0)
        b.addi(11, 11, -128)
        b.slli(12, 8, 3)
        b.add(12, 12, 9)
        b.slli(12, 12, 3)
        b.add(12, 7, 12)
        b.st(11, 12, 0)
        b.addi(9, 9, 1)
        b.j(col_loop)
        b.label(col_done)
        b.addi(8, 8, 1)
        b.j(row_loop)
        b.label(row_done)
        # tmp = DCT x block ; out = tmp x DCT^T
        b.load_addr(3, "dct")
        b.load_addr(4, "block")
        b.load_addr(5, "tmp")
        b.li(6, 0)
        b.call("matmul8")
        b.load_addr(3, "tmp")
        b.load_addr(4, "dct")
        b.load_addr(5, "out")
        b.li(6, 1)
        b.call("matmul8")
        # quantize in place: out[i] /= quant[i]
        b.load_addr(5, "out")
        b.load_addr(6, "quant")
        b.li(7, 0)
        q_loop = b.fresh_label("q")
        q_done = b.fresh_label("q_done")
        b.label(q_loop)
        b.li(13, 64)
        b.bge(7, 13, q_done)
        b.slli(8, 7, 3)
        b.add(9, 5, 8)
        b.ld(10, 9, 0)
        b.add(11, 6, 8)
        b.ld(12, 11, 0)  # quant entry -- constant table
        b.div(10, 10, 12)
        b.st(10, 9, 0)
        b.addi(7, 7, 1)
        b.j(q_loop)
        b.label(q_done)
        # zigzag + RLE
        b.load_addr(5, "out")
        b.load_addr(6, "zigzag")
        b.load_addr(14, "checksum")
        b.ld(15, 14, 0)
        b.load_addr(16, "pairs")
        b.ld(17, 16, 0)
        b.li(18, 0)  # run length
        b.li(7, 0)
        z_loop = b.fresh_label("z")
        z_done = b.fresh_label("z_done")
        b.label(z_loop)
        b.li(13, 64)
        b.bge(7, 13, z_done)
        b.slli(8, 7, 3)
        b.add(9, 6, 8)
        b.ld(10, 9, 0)  # zigzag index -- constant table
        b.slli(10, 10, 3)
        b.add(10, 5, 10)
        b.ld(11, 10, 0)  # coefficient
        with if_cond(b, "eq", 11, 0):
            b.addi(18, 18, 1)
            b.j("__rle_next")
        b.addi(17, 17, 1)
        b.li(13, 31)
        b.mul(15, 15, 13)
        b.add(15, 15, 18)
        b.add(15, 15, 11)
        b.li(18, 0)
        b.label("__rle_next")
        b.addi(7, 7, 1)
        b.j(z_loop)
        b.label(z_done)
        # end-of-block marker
        b.addi(17, 17, 1)
        b.li(13, 31)
        b.mul(15, 15, 13)
        b.add(15, 15, 18)
        b.st(15, 14, 0)
        b.st(17, 16, 0)

    # ------------------------------------------------------------------
    # main: iterate blocks.
    # r24 = bx, r25 = by, r26 = size.
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26)):
        b.load_addr(4, "size")
        b.ld(26, 4, 0)
        b.li(25, 0)
        by_loop = b.fresh_label("by")
        by_done = b.fresh_label("by_done")
        b.label(by_loop)
        b.bge(25, 26, by_done)
        b.li(24, 0)
        bx_loop = b.fresh_label("bx")
        bx_done = b.fresh_label("bx_done")
        b.label(bx_loop)
        b.bge(24, 26, bx_done)
        b.mov(3, 24)
        b.mov(4, 25)
        b.call("encode_block")
        b.addi(24, 24, 8)
        b.j(bx_loop)
        b.label(bx_done)
        b.addi(25, 25, 8)
        b.j(by_loop)
        b.label(by_done)

    return b.build()
