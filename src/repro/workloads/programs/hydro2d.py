"""``hydro2d`` workload: 2-D hydrodynamics (Lax-scheme stencil sweeps).

SPEC '92 hydro2d solves hydrodynamical Navier-Stokes equations to
compute galactic jets.  This miniature runs Lax-averaged stencil sweeps
over a density grid whose interior is largely uniform ambient medium
with a jet inflow region -- as in the real problem, most neighbour
loads keep returning the same ambient value, giving hydro2d the high
value locality the paper reports for it.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.isa.registers import FPR_BASE as F
from repro.workloads.support import Lcg

NAME = "hydro2d"
DESCRIPTION = "Lax stencil sweeps over a mostly-uniform density grid"
INPUT_DESCRIPTION = "uniform medium with a jet inflow region"
CATEGORY = "fp"
PAPER_INSTRUCTIONS = {"ppc": "4.3M", "alpha": "5.3M"}

AMBIENT = 1.0
SWEEPS = 4


def grid_size(scale: str = "small") -> int:
    """Grid edge length at *scale*."""
    return {"tiny": 12, "small": 20, "reference": 36}[scale]


def initial_grid(scale: str = "small") -> list[float]:
    """Row-major density grid: ambient everywhere, a hot jet corner."""
    size = grid_size(scale)
    rng = Lcg(seed=0x42D0)
    grid = [AMBIENT] * (size * size)
    for i in range(2, size // 3):
        for j in range(2, size // 3):
            grid[i * size + j] = 2.0 + rng.uniform(0.0, 1.0)
    return grid


def expected_grid(scale: str = "small") -> list[float]:
    """Reference final grid -- bit-exact mirror of the program."""
    size = grid_size(scale)
    src = initial_grid(scale)
    dst = list(src)
    for _ in range(SWEEPS):
        for i in range(1, size - 1):
            for j in range(1, size - 1):
                north = src[(i - 1) * size + j]
                south = src[(i + 1) * size + j]
                west = src[i * size + (j - 1)]
                east = src[i * size + (j + 1)]
                dst[i * size + j] = ((north + south) + (west + east)) * 0.25
        src, dst = dst, src
    return src


def result_label() -> str:
    """Data label of the buffer holding the final grid after all sweeps."""
    return "grid_a" if SWEEPS % 2 == 0 else "grid_b"


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the hydro2d program for *target* at *scale*."""
    size = grid_size(scale)
    grid = initial_grid(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    data.label("grid_a")
    data.doubles(grid)
    data.label("grid_b")
    data.doubles(grid)
    data.label("size")
    data.word(size)

    # r24 = src, r25 = dst, r26 = i, r27 = j, r28 = size, r29 = sweeps
    # f1..f4 = neighbours, f5 = 0.25
    with b.function("main", save=(24, 25, 26, 27, 28, 29)):
        b.load_addr(24, "grid_a")
        b.load_addr(25, "grid_b")
        b.load_addr(4, "size")
        b.ld(28, 4, 0)
        b.load_fconst(F + 5, 0.25)
        b.li(29, SWEEPS)
        sweep_loop = b.fresh_label("sweep")
        sweep_done = b.fresh_label("sweep_done")
        b.label(sweep_loop)
        b.beqz(29, sweep_done)
        b.li(26, 1)
        i_loop = b.fresh_label("i")
        i_done = b.fresh_label("i_done")
        b.label(i_loop)
        b.addi(5, 28, -1)
        b.bge(26, 5, i_done)
        b.li(27, 1)
        j_loop = b.fresh_label("j")
        j_done = b.fresh_label("j_done")
        b.label(j_loop)
        b.addi(5, 28, -1)
        b.bge(27, 5, j_done)
        # element byte offset = (i*size + j) * 8
        b.mul(6, 26, 28)
        b.add(6, 6, 27)
        b.slli(6, 6, 3)
        b.add(7, 24, 6)  # &src[i][j]
        b.slli(8, 28, 3)  # row stride in bytes
        b.sub(9, 7, 8)
        b.fld(F + 1, 9, 0)  # north
        b.add(9, 7, 8)
        b.fld(F + 2, 9, 0)  # south
        b.fld(F + 3, 7, -8)  # west
        b.fld(F + 4, 7, 8)  # east
        b.fadd(F + 1, F + 1, F + 2)
        b.fadd(F + 3, F + 3, F + 4)
        b.fadd(F + 1, F + 1, F + 3)
        b.fmul(F + 1, F + 1, F + 5)
        b.add(9, 25, 6)
        b.fst(F + 1, 9, 0)
        b.addi(27, 27, 1)
        b.j(j_loop)
        b.label(j_done)
        b.addi(26, 26, 1)
        b.j(i_loop)
        b.label(i_done)
        # swap buffers
        b.mov(5, 24)
        b.mov(24, 25)
        b.mov(25, 5)
        b.addi(29, 29, -1)
        b.j(sweep_loop)
        b.label(sweep_done)

    return b.build()
