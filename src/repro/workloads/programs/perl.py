"""``perl`` workload: anagram search (SPEC '95 134.perl's famous input).

The paper runs perl on an anagram search ("find 'admits' in 1/8 of
input").  This miniature performs the same computation the perl script
does: for every word in a dictionary, build a letter-count signature and
compare it against the target word's signature, counting anagrams.
Signature construction repeatedly loads the same 26 counters and the
loop restores saved registers around a helper call -- both high-locality
idioms.
"""

from __future__ import annotations

from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.workloads.support import (
    Lcg,
    for_range,
    if_cond,
    make_word_list,
    scaled,
    while_loop,
)

NAME = "perl"
DESCRIPTION = "anagram search over a word list"
INPUT_DESCRIPTION = 'synthetic dictionary; target word "admits"'
CATEGORY = "int"
PAPER_INSTRUCTIONS = {"ppc": "105M", "alpha": "114M"}

TARGET_WORD = b"admits"


def input_words(scale: str = "small") -> list[bytes]:
    """The dictionary searched for anagrams (includes planted hits)."""
    rng = Lcg(seed=0xAA6)
    words = make_word_list(rng, count=scaled(scale, 350))
    # Plant a few true anagrams so the match path executes.
    for position, anagram in ((7, b"midsat"), (101, b"tsadim"),
                              (211, b"admits")):
        if position < len(words):
            words[position] = anagram
    return words


def expected_matches(scale: str = "small") -> int:
    """Reference answer computed in Python (used by the test suite)."""
    target = sorted(TARGET_WORD)
    return sum(1 for w in input_words(scale) if sorted(w) == target)


def build(target: str = "ppc", scale: str = "small") -> Program:
    """Build the perl (anagram) program for *target* at *scale*."""
    words = input_words(scale)

    b = CodeBuilder(NAME, target=target)
    data = b.data
    # Words are stored as a packed blob plus an offset/length table --
    # the pointer table is loader-fixed ("addressability" idiom).
    blob = b"".join(words)
    data.label("blob")
    data.bytes_(blob)
    data.label("word_off")
    offsets = []
    cursor = 0
    for word in words:
        offsets.append(cursor)
        cursor += len(word)
    data.words(offsets)
    data.label("word_len")
    data.words([len(w) for w in words])
    data.label("num_words")
    data.word(len(words))
    data.label("target_word")
    data.bytes_(TARGET_WORD)
    data.label("target_len")
    data.word(len(TARGET_WORD))
    data.label("target_sig")
    data.space(26)
    data.label("word_sig")
    data.space(26)
    data.label("match_count")
    data.word(0)

    # ------------------------------------------------------------------
    # build_sig(r3 = word ptr, r4 = length, r5 = signature base):
    # zero the 26 counters then count letters.
    # ------------------------------------------------------------------
    with b.function("build_sig", leaf=True):
        b.li(7, 26)
        with for_range(b, 6, 7):
            b.slli(8, 6, 3)
            b.add(8, 5, 8)
            b.st(0, 8, 0)
        b.add(4, 3, 4)  # end pointer
        with while_loop(b) as (_, done):
            b.bgeu(3, 4, done)
            b.lbu(8, 3, 0)
            b.addi(3, 3, 1)
            b.addi(8, 8, -ord("a"))
            b.slli(8, 8, 3)
            b.add(8, 5, 8)
            b.ld(9, 8, 0)
            b.addi(9, 9, 1)
            b.st(9, 8, 0)

    # ------------------------------------------------------------------
    # sig_equal(r3 = sig a, r4 = sig b) -> r3 = 1 if all 26 match.
    # ------------------------------------------------------------------
    with b.function("sig_equal", leaf=True):
        b.li(7, 26)
        with for_range(b, 6, 7):
            b.slli(8, 6, 3)
            b.add(9, 3, 8)
            b.ld(10, 9, 0)
            b.add(9, 4, 8)
            b.ld(11, 9, 0)
            with if_cond(b, "ne", 10, 11):
                b.li(3, 0)
                b.return_from_function()
        b.li(3, 1)

    # ------------------------------------------------------------------
    # main: precompute the target signature, then scan the dictionary.
    # r24 = word index, r25 = num words, r26 = match count.
    # ------------------------------------------------------------------
    with b.function("main", save=(24, 25, 26)):
        b.load_addr(3, "target_word")
        b.load_addr(4, "target_len")
        b.ld(4, 4, 0)
        b.load_addr(5, "target_sig")
        b.call("build_sig")
        b.load_addr(4, "num_words")
        b.ld(25, 4, 0)
        b.li(26, 0)
        b.li(24, 0)
        loop = b.fresh_label("words")
        done = b.fresh_label("words_done")
        b.label(loop)
        b.bge(24, 25, done)
        # Length filter first (cheap reject), like the perl script's grep.
        b.load_addr(5, "word_len")
        b.slli(6, 24, 3)
        b.add(5, 5, 6)
        b.ld(4, 5, 0)
        b.load_addr(7, "target_len")
        b.ld(7, 7, 0)
        with if_cond(b, "eq", 4, 7):
            b.load_addr(5, "word_off")
            b.add(5, 5, 6)
            b.ld(3, 5, 0)
            b.load_addr(8, "blob")
            b.add(3, 8, 3)
            b.load_addr(5, "word_sig")
            b.call("build_sig")
            b.load_addr(3, "word_sig")
            b.load_addr(4, "target_sig")
            b.call("sig_equal")
            b.add(26, 26, 3)
        b.addi(24, 24, 1)
        b.j(loop)
        b.label(done)
        b.load_addr(4, "match_count")
        b.st(26, 4, 0)

    return b.build()
