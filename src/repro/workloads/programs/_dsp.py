"""Shared DSP helpers for the image workloads (cjpeg, mpeg).

Provides the fixed-point 8x8 matrix multiply both codecs use, emitted
into whichever program builder asks for it.
"""

from __future__ import annotations

import math

from repro.isa.builder import CodeBuilder
from repro.workloads.support import if_cond


def dct_matrix() -> list[int]:
    """8x8 DCT-II basis, fixed-point scaled by 256 (row-major)."""
    rows = []
    for i in range(8):
        scale = math.sqrt(1.0 / 8) if i == 0 else math.sqrt(2.0 / 8)
        for j in range(8):
            value = scale * math.cos((2 * j + 1) * i * math.pi / 16)
            rows.append(round(value * 256))
    return rows


def emit_matmul8(b: CodeBuilder) -> None:
    """Emit ``matmul8(r3=A, r4=B, r5=dst, r6=transpose_b)``.

    Computes ``dst = (A x B) >> 8`` over 8x8 word matrices; with
    ``r6 != 0`` B is accessed transposed (``B[j][k]``).
    """
    with b.function("matmul8", leaf=True):
        have_b = b.fresh_label("mm_have_b")
        b.li(7, 0)  # i
        i_loop = b.fresh_label("mi")
        i_done = b.fresh_label("mi_done")
        b.label(i_loop)
        b.li(13, 8)
        b.bge(7, 13, i_done)
        b.li(8, 0)  # j
        j_loop = b.fresh_label("mj")
        j_done = b.fresh_label("mj_done")
        b.label(j_loop)
        b.li(13, 8)
        b.bge(8, 13, j_done)
        b.li(9, 0)  # acc
        b.li(10, 0)  # k
        k_loop = b.fresh_label("mk")
        k_done = b.fresh_label("mk_done")
        b.label(k_loop)
        b.li(13, 8)
        b.bge(10, 13, k_done)
        # A[i][k]
        b.slli(11, 7, 3)
        b.add(11, 11, 10)
        b.slli(11, 11, 3)
        b.add(11, 3, 11)
        b.ld(14, 11, 0)
        # B[k][j], or B[j][k] when transposed
        with if_cond(b, "ne", 6, 0):
            b.slli(11, 8, 3)
            b.add(11, 11, 10)
            b.slli(11, 11, 3)
            b.add(11, 4, 11)
            b.ld(15, 11, 0)
            b.j(have_b)
        b.slli(11, 10, 3)
        b.add(11, 11, 8)
        b.slli(11, 11, 3)
        b.add(11, 4, 11)
        b.ld(15, 11, 0)
        b.label(have_b)
        b.mul(14, 14, 15)
        b.add(9, 9, 14)
        b.addi(10, 10, 1)
        b.j(k_loop)
        b.label(k_done)
        b.srai(9, 9, 8)
        b.slli(11, 7, 3)
        b.add(11, 11, 8)
        b.slli(11, 11, 3)
        b.add(11, 5, 11)
        b.st(9, 11, 0)
        b.addi(8, 8, 1)
        b.j(j_loop)
        b.label(j_done)
        b.addi(7, 7, 1)
        b.j(i_loop)
        b.label(i_done)
