"""The 17-benchmark workload suite (the paper's Table 1)."""

from repro.workloads.suite import (
    BENCHMARKS,
    BY_NAME,
    Benchmark,
    FP_NAMES,
    INTEGER_NAMES,
    NAMES,
    get_benchmark,
)
from repro.workloads.support import SCALES, Lcg

__all__ = [
    "BENCHMARKS", "BY_NAME", "Benchmark", "FP_NAMES", "INTEGER_NAMES",
    "NAMES", "get_benchmark", "SCALES", "Lcg",
]
