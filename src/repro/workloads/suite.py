"""Benchmark suite registry (the paper's Table 1).

All seventeen benchmarks the paper traces are registered here, in the
paper's order.  Each :class:`Benchmark` knows how to build its program
for a codegen target and input scale, and how to *verify* a finished
run against a Python reference computation -- every workload computes
something checkable, not just instruction noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.isa.program import Program, bits_to_float
from repro.sim.functional import ExecutionResult
from repro.workloads.programs import (
    _cc,
    ccl,
    ccl_271,
    cjpeg,
    compress,
    doduc,
    eqntott,
    gawk,
    gperf,
    grep,
    hydro2d,
    mpeg,
    perl,
    quick,
    sc,
    swm256,
    tomcatv,
    xlisp,
)


@dataclass(frozen=True)
class Benchmark:
    """One row of the paper's Table 1."""

    name: str
    description: str
    input_description: str
    category: str  # "int" or "fp"
    paper_instructions: dict
    build: Callable[..., Program]  # build(target, scale) -> Program
    verify: Callable[[Program, ExecutionResult, str], None]

    def build_program(self, target: str = "ppc",
                      scale: str = "small") -> Program:
        """Build this benchmark's program."""
        return self.build(target, scale)


def _read_words(result: ExecutionResult, program: Program, label: str,
                count: int) -> list:
    base = program.symbols[label]
    return [result.memory.read_word(base + 8 * i)[0] for i in range(count)]


def _read_doubles(result: ExecutionResult, program: Program, label: str,
                  count: int) -> list:
    return [bits_to_float(v)
            for v in _read_words(result, program, label, count)]


def _expect(condition: bool, name: str, detail: str) -> None:
    if not condition:
        raise AssertionError(f"{name}: verification failed ({detail})")


# --- per-benchmark verifiers -------------------------------------------------
def _verify_ccl(program, result, scale):
    got = _read_words(result, program, "variables", _cc.NUM_VARS)
    _expect(got == ccl.expected_variables(scale), "ccl", "variable values")


def _verify_ccl_271(program, result, scale):
    got = _read_words(result, program, "variables", _cc.NUM_VARS)
    _expect(got == ccl_271.expected_variables(scale), "ccl-271",
            "variable values")


def _verify_cjpeg(program, result, scale):
    pairs = _read_words(result, program, "pairs", 1)[0]
    checksum = _read_words(result, program, "checksum", 1)[0]
    _expect((pairs, checksum) == cjpeg.expected_output(scale), "cjpeg",
            "RLE output")


def _verify_compress(program, result, scale):
    # Decode the emitted LZW codes and compare with the input text.
    count = _read_words(result, program, "out_count", 1)[0]
    codes = _read_words(result, program, "output", count)
    length = _read_words(result, program, "input_len", 1)[0]
    text = result.memory.read_bytes(program.symbols["input"], length)
    table = {i: bytes([i]) for i in range(256)}
    next_code = compress.FIRST_CODE
    w = table[codes[0]]
    out = bytearray(w)
    for code in codes[1:]:
        if code in table:
            entry = table[code]
        elif code == next_code:
            entry = w + w[:1]
        else:
            raise AssertionError(f"compress: invalid LZW code {code}")
        out += entry
        if next_code < compress.MAX_CODE:
            table[next_code] = w + entry[:1]
            next_code += 1
        w = entry
    _expect(bytes(out) == text, "compress", "LZW round trip")


def _verify_doduc(program, result, scale):
    state = _read_doubles(result, program, "state",
                          len(doduc.initial_state(scale)))
    energy = _read_doubles(result, program, "energy", 1)[0]
    exp_state, exp_energy = doduc.expected_state(scale)
    _expect(state == exp_state and energy == exp_energy, "doduc",
            "final state")


def _verify_eqntott(program, result, scale):
    count = _read_words(result, program, "num_minterms", 1)[0]
    got = _read_words(result, program, "minterms", count)
    _expect(got == eqntott.expected_minterms(scale), "eqntott",
            "sorted minterms")


def _verify_gawk(program, result, scale):
    sums = _read_words(result, program, "col_sums", gawk.NUM_COLUMNS)
    _expect(sums == gawk.expected_column_sums(scale), "gawk", "column sums")
    lines = _read_words(result, program, "line_count", 1)[0]
    _expect(lines == len(gawk.input_lines(scale)), "gawk", "line count")


def _verify_gperf(program, result, scale):
    got = _read_words(result, program, "solution", 1)[0]
    expected = gperf.expected_solution(scale)
    _expect(got == expected and expected < gperf.MAX_TRIALS, "gperf",
            "solution trial")


def _verify_grep(program, result, scale):
    got = _read_words(result, program, "match_count", 1)[0]
    _expect(got == grep.expected_matches(scale), "grep", "match count")


def _verify_hydro2d(program, result, scale):
    count = hydro2d.grid_size(scale) ** 2
    got = _read_doubles(result, program, hydro2d.result_label(), count)
    _expect(got == hydro2d.expected_grid(scale), "hydro2d", "final grid")


def _verify_mpeg(program, result, scale):
    got = _read_words(result, program, "checksum", 1)[0]
    _expect(got == mpeg.expected_checksum(scale), "mpeg", "pixel checksum")


def _verify_perl(program, result, scale):
    got = _read_words(result, program, "match_count", 1)[0]
    _expect(got == perl.expected_matches(scale), "perl", "anagram count")


def _verify_quick(program, result, scale):
    values = quick.input_values(scale)
    got = _read_words(result, program, "array", len(values))
    _expect(got == sorted(values), "quick", "sorted array")


def _verify_sc(program, result, scale):
    rows, cols, _ = sc.input_grid(scale)
    base = program.symbols["grid"]
    got = [result.memory.read_word(base + 32 * i + 8)[0]
           for i in range(rows * cols)]
    _expect(got == sc.expected_values(scale), "sc", "cell values")


def _verify_swm256(program, result, scale):
    count = swm256.grid_size(scale) ** 2
    expected = swm256.expected_fields(scale)
    for label, field in zip(("u", "v", "p"), expected):
        got = _read_doubles(result, program, label, count)
        _expect(got == field, "swm256", f"{label} field")


def _verify_tomcatv(program, result, scale):
    count = tomcatv.grid_size(scale) ** 2
    label_x, label_y = tomcatv.result_labels()
    exp_x, exp_y, exp_residual = tomcatv.expected_mesh(scale)
    _expect(_read_doubles(result, program, label_x, count) == exp_x,
            "tomcatv", "x mesh")
    _expect(_read_doubles(result, program, label_y, count) == exp_y,
            "tomcatv", "y mesh")
    residual = _read_doubles(result, program, "residual", 1)[0]
    _expect(residual == exp_residual, "tomcatv", "residual")


def _verify_xlisp(program, result, scale):
    got = _read_words(result, program, "result", 1)[0]
    _expect(got == xlisp.expected_result(scale), "xlisp", "fib result")


def _register(module, verify) -> Benchmark:
    return Benchmark(
        name=module.NAME,
        description=module.DESCRIPTION,
        input_description=module.INPUT_DESCRIPTION,
        category=module.CATEGORY,
        paper_instructions=module.PAPER_INSTRUCTIONS,
        build=module.build,
        verify=verify,
    )


#: All benchmarks, in the paper's Table 1 order.
BENCHMARKS: tuple[Benchmark, ...] = (
    _register(ccl_271, _verify_ccl_271),
    _register(ccl, _verify_ccl),
    _register(cjpeg, _verify_cjpeg),
    _register(compress, _verify_compress),
    _register(eqntott, _verify_eqntott),
    _register(gawk, _verify_gawk),
    _register(gperf, _verify_gperf),
    _register(grep, _verify_grep),
    _register(mpeg, _verify_mpeg),
    _register(perl, _verify_perl),
    _register(quick, _verify_quick),
    _register(sc, _verify_sc),
    _register(xlisp, _verify_xlisp),
    _register(doduc, _verify_doduc),
    _register(hydro2d, _verify_hydro2d),
    _register(swm256, _verify_swm256),
    _register(tomcatv, _verify_tomcatv),
)

#: Benchmark lookup by name.
BY_NAME: dict[str, Benchmark] = {b.name: b for b in BENCHMARKS}

#: Names in suite order.
NAMES: tuple[str, ...] = tuple(b.name for b in BENCHMARKS)

#: The integer and floating-point subsets.
INTEGER_NAMES = tuple(b.name for b in BENCHMARKS if b.category == "int")
FP_NAMES = tuple(b.name for b in BENCHMARKS if b.category == "fp")


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; expected one of {NAMES}"
        ) from None
